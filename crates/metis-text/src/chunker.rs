//! Fixed-size token chunker.
//!
//! The paper builds its retrieval databases by "splitting the queries'
//! contexts into fixed-sized chunks using Langchain" (§7.1); each chunk has a
//! fixed number of tokens (e.g. 1000 for KG-RAG-FinSec). This module
//! reproduces that splitter over [`AnnotatedText`] so fact ground truth
//! survives chunking.

use crate::annotate::AnnotatedText;

/// Identifier of a chunk within one corpus/database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ChunkId(pub u32);

impl ChunkId {
    /// Raw index of the chunk.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Configuration of the fixed-size splitter.
#[derive(Clone, Copy, Debug)]
pub struct ChunkerConfig {
    /// Tokens per chunk (the paper uses 512–1024 depending on dataset).
    pub chunk_size: usize,
    /// Tokens of overlap between consecutive chunks.
    pub overlap: usize,
}

impl ChunkerConfig {
    /// Creates a config with the given chunk size and no overlap.
    pub fn with_size(chunk_size: usize) -> Self {
        Self {
            chunk_size,
            overlap: 0,
        }
    }
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        Self {
            chunk_size: 512,
            overlap: 0,
        }
    }
}

/// A chunk produced by the splitter.
#[derive(Clone, Debug)]
pub struct TokenChunk {
    /// Position of the chunk in the source document stream.
    pub id: ChunkId,
    /// The chunk's tokens and the fact spans fully contained in it.
    pub text: AnnotatedText,
}

/// Fixed-size token splitter.
///
/// # Examples
///
/// ```
/// use metis_text::{AnnotatedText, Chunker, ChunkerConfig, TokenId};
///
/// let mut doc = AnnotatedText::new();
/// doc.push_tokens(&vec![TokenId(0); 100]);
/// let chunks = Chunker::new(ChunkerConfig::with_size(32)).split(&doc);
/// assert_eq!(chunks.len(), 4); // 32 + 32 + 32 + 4
/// assert_eq!(chunks[3].text.len(), 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Chunker {
    config: ChunkerConfig,
}

impl Chunker {
    /// Creates a chunker.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero or `overlap >= chunk_size`; either
    /// would make the splitter loop forever.
    pub fn new(config: ChunkerConfig) -> Self {
        assert!(config.chunk_size > 0, "chunk_size must be positive");
        assert!(
            config.overlap < config.chunk_size,
            "overlap must be smaller than chunk_size"
        );
        Self { config }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.config.chunk_size
    }

    /// Splits `doc` into fixed-size chunks.
    ///
    /// Without overlap the chunks partition the document exactly: every token
    /// appears in exactly one chunk. With overlap, consecutive chunks share
    /// `overlap` tokens, which lets facts that would straddle a boundary be
    /// fully contained in one of the two chunks.
    pub fn split(&self, doc: &AnnotatedText) -> Vec<TokenChunk> {
        let mut chunks = Vec::new();
        if doc.is_empty() {
            return chunks;
        }
        let step = self.config.chunk_size - self.config.overlap;
        let mut start = 0;
        let mut id = 0u32;
        while start < doc.len() {
            let end = (start + self.config.chunk_size).min(doc.len());
            chunks.push(TokenChunk {
                id: ChunkId(id),
                text: doc.slice(start, end),
            });
            id += 1;
            if end == doc.len() {
                break;
            }
            start += step;
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{FactId, FactSpan};
    use crate::tokenizer::TokenId;

    fn doc_of(n: usize) -> AnnotatedText {
        let mut d = AnnotatedText::new();
        d.push_tokens(&(0..n as u32).map(TokenId).collect::<Vec<_>>());
        d
    }

    #[test]
    fn partition_covers_all_tokens_without_overlap() {
        let doc = doc_of(1000);
        let chunks = Chunker::new(ChunkerConfig::with_size(128)).split(&doc);
        let total: usize = chunks.iter().map(|c| c.text.len()).sum();
        assert_eq!(total, 1000);
        // Token identity is preserved in order.
        let mut all = Vec::new();
        for c in &chunks {
            all.extend_from_slice(c.text.tokens());
        }
        assert_eq!(all, doc.tokens());
    }

    #[test]
    fn empty_doc_yields_no_chunks() {
        let chunks = Chunker::new(ChunkerConfig::default()).split(&AnnotatedText::new());
        assert!(chunks.is_empty());
    }

    #[test]
    fn overlap_duplicates_boundary_tokens() {
        let doc = doc_of(10);
        let chunks = Chunker::new(ChunkerConfig {
            chunk_size: 4,
            overlap: 2,
        })
        .split(&doc);
        assert_eq!(chunks[0].text.tokens()[2..], chunks[1].text.tokens()[..2]);
    }

    #[test]
    fn fact_on_boundary_lands_in_exactly_one_chunk_without_overlap() {
        let mut doc = doc_of(6);
        // Fact spans tokens 5..8: crosses the 8-token boundary at... use size 8.
        doc.push_fact(FactId(1), &[TokenId(100), TokenId(101), TokenId(102)]);
        doc.push_tokens(&[TokenId(9); 7]);
        // Doc is 16 tokens; fact occupies 6..9; chunk size 8 cuts at 8.
        let chunks = Chunker::new(ChunkerConfig::with_size(8)).split(&doc);
        let carrying: Vec<_> = chunks
            .iter()
            .filter(|c| c.text.fact_ids().count() > 0)
            .collect();
        // The fact straddles the boundary, so it is dropped from both chunks.
        assert!(carrying.is_empty());
    }

    #[test]
    fn overlap_rescues_boundary_fact() {
        let mut doc = doc_of(6);
        doc.push_fact(FactId(1), &[TokenId(100), TokenId(101), TokenId(102)]);
        doc.push_tokens(&[TokenId(9); 7]);
        let chunks = Chunker::new(ChunkerConfig {
            chunk_size: 8,
            overlap: 4,
        })
        .split(&doc);
        let carrying = chunks
            .iter()
            .filter(|c| c.text.fact_ids().count() > 0)
            .count();
        assert!(carrying >= 1);
    }

    #[test]
    fn chunk_ids_are_sequential() {
        let chunks = Chunker::new(ChunkerConfig::with_size(10)).split(&doc_of(35));
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.id.index(), i);
        }
        assert_eq!(chunks.len(), 4);
    }

    #[test]
    fn span_offsets_are_rebased_per_chunk() {
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&[TokenId(0); 12]);
        doc.push_fact(FactId(5), &[TokenId(1), TokenId(2)]);
        let chunks = Chunker::new(ChunkerConfig::with_size(10)).split(&doc);
        let spans = chunks[1].text.spans();
        assert_eq!(
            spans[0],
            FactSpan {
                fact: FactId(5),
                start: 2,
                len: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = Chunker::new(ChunkerConfig::with_size(0));
    }
}

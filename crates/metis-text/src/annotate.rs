//! Fact annotations over token streams.
//!
//! The synthetic corpus plants *facts* — short token phrases that answer (or
//! partially answer) queries — inside otherwise irrelevant text. Annotations
//! travel with the tokens through chunking, retrieval, and prompt assembly so
//! that the LLM generation model (`metis-llm`) can decide which facts an
//! inference call can extract. This mirrors how the paper's quality results
//! are determined by whether the needed evidence is present in the context.

use crate::tokenizer::TokenId;

/// Globally unique identifier of a planted fact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u64);

/// A fact occurrence inside a token stream: fact `fact` occupies
/// `start..start + len` in the stream's token vector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FactSpan {
    /// Which fact this span carries.
    pub fact: FactId,
    /// Token offset of the span start.
    pub start: usize,
    /// Number of tokens in the span.
    pub len: usize,
}

impl FactSpan {
    /// End offset (exclusive) of the span.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// A token sequence together with the fact spans it contains.
///
/// # Examples
///
/// ```
/// use metis_text::{AnnotatedText, FactId, FactSpan, TokenId};
///
/// let mut text = AnnotatedText::new();
/// text.push_tokens(&[TokenId(1), TokenId(2)]);
/// text.push_fact(FactId(7), &[TokenId(3), TokenId(4)]);
/// assert_eq!(text.len(), 4);
/// assert_eq!(text.spans()[0], FactSpan { fact: FactId(7), start: 2, len: 2 });
/// ```
#[derive(Clone, Debug, Default)]
pub struct AnnotatedText {
    tokens: Vec<TokenId>,
    spans: Vec<FactSpan>,
}

impl AnnotatedText {
    /// Creates an empty annotated text.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an annotated text from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if any span extends beyond the token vector; constructing such
    /// a value would corrupt downstream slicing.
    pub fn from_parts(tokens: Vec<TokenId>, spans: Vec<FactSpan>) -> Self {
        for s in &spans {
            assert!(
                s.end() <= tokens.len(),
                "fact span {:?} exceeds token length {}",
                s,
                tokens.len()
            );
        }
        Self { tokens, spans }
    }

    /// Appends plain (fact-free) tokens.
    pub fn push_tokens(&mut self, tokens: &[TokenId]) {
        self.tokens.extend_from_slice(tokens);
    }

    /// Appends a fact phrase, recording its span.
    pub fn push_fact(&mut self, fact: FactId, phrase: &[TokenId]) {
        let start = self.tokens.len();
        self.tokens.extend_from_slice(phrase);
        self.spans.push(FactSpan {
            fact,
            start,
            len: phrase.len(),
        });
    }

    /// Appends another annotated text, shifting its spans.
    pub fn push_text(&mut self, other: &AnnotatedText) {
        let offset = self.tokens.len();
        self.tokens.extend_from_slice(&other.tokens);
        self.spans.extend(other.spans.iter().map(|s| FactSpan {
            fact: s.fact,
            start: s.start + offset,
            len: s.len,
        }));
    }

    /// The token sequence.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// The fact spans, in insertion order.
    pub fn spans(&self) -> &[FactSpan] {
        &self.spans
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` when the text holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Extracts the sub-range `start..end` of tokens, keeping the fact spans
    /// that are *fully contained* in the range (partially cut facts are
    /// dropped: a truncated fact phrase is not recoverable evidence).
    pub fn slice(&self, start: usize, end: usize) -> AnnotatedText {
        let end = end.min(self.tokens.len());
        let start = start.min(end);
        let tokens = self.tokens[start..end].to_vec();
        let spans = self
            .spans
            .iter()
            .filter(|s| s.start >= start && s.end() <= end)
            .map(|s| FactSpan {
                fact: s.fact,
                start: s.start - start,
                len: s.len,
            })
            .collect();
        AnnotatedText { tokens, spans }
    }

    /// Iterates over the distinct facts present (fully) in this text.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        let mut seen = std::collections::BTreeSet::new();
        self.spans.iter().filter_map(move |s| {
            if seen.insert(s.fact) {
                Some(s.fact)
            } else {
                None
            }
        })
    }

    /// Returns the tokens of the first span carrying `fact`, if present.
    pub fn fact_tokens(&self, fact: FactId) -> Option<&[TokenId]> {
        self.spans
            .iter()
            .find(|s| s.fact == fact)
            .map(|s| &self.tokens[s.start..s.end()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ids: &[u32]) -> Vec<TokenId> {
        ids.iter().map(|&i| TokenId(i)).collect()
    }

    #[test]
    fn push_fact_records_span() {
        let mut t = AnnotatedText::new();
        t.push_tokens(&toks(&[1, 2, 3]));
        t.push_fact(FactId(9), &toks(&[4, 5]));
        assert_eq!(t.len(), 5);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.fact_tokens(FactId(9)).unwrap(), &toks(&[4, 5])[..]);
    }

    #[test]
    fn push_text_shifts_spans() {
        let mut a = AnnotatedText::new();
        a.push_tokens(&toks(&[1, 1, 1]));
        let mut b = AnnotatedText::new();
        b.push_fact(FactId(1), &toks(&[7]));
        a.push_text(&b);
        assert_eq!(a.spans()[0].start, 3);
    }

    #[test]
    fn slice_keeps_only_fully_contained_facts() {
        let mut t = AnnotatedText::new();
        t.push_tokens(&toks(&[0, 0]));
        t.push_fact(FactId(1), &toks(&[1, 2])); // Spans 2..4.
        t.push_fact(FactId(2), &toks(&[3, 4])); // Spans 4..6.
        let s = t.slice(0, 5); // Cuts fact 2 in half.
        assert_eq!(s.len(), 5);
        let facts: Vec<_> = s.fact_ids().collect();
        assert_eq!(facts, vec![FactId(1)]);
        assert_eq!(s.spans()[0].start, 2);
    }

    #[test]
    fn slice_beyond_end_is_clamped() {
        let mut t = AnnotatedText::new();
        t.push_tokens(&toks(&[1, 2]));
        let s = t.slice(1, 10);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fact_ids_deduplicates() {
        let mut t = AnnotatedText::new();
        t.push_fact(FactId(3), &toks(&[1]));
        t.push_fact(FactId(3), &toks(&[1]));
        assert_eq!(t.fact_ids().count(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds token length")]
    fn from_parts_validates_spans() {
        let _ = AnnotatedText::from_parts(
            toks(&[1]),
            vec![FactSpan {
                fact: FactId(0),
                start: 0,
                len: 2,
            }],
        );
    }
}

//! Text substrate for the METIS reproduction.
//!
//! This crate provides the lowest layer of the stack: a deterministic
//! word-level tokenizer with an interning vocabulary, a fixed-size token
//! chunker (the equivalent of the Langchain splitter used by the paper to
//! build retrieval databases), fact annotations that let the synthetic
//! corpus carry ground truth through the pipeline, and a seeded synthetic
//! text generator used by the workload generators in `metis-datasets`.
//!
//! Everything here is deterministic: the same seed produces the same
//! corpus, byte for byte, on every platform.

pub mod annotate;
pub mod chunker;
pub mod textgen;
pub mod tokenizer;

pub use annotate::{AnnotatedText, FactId, FactSpan};
pub use chunker::{ChunkId, Chunker, ChunkerConfig, TokenChunk};
pub use textgen::{TextGen, TopicVocab};
pub use tokenizer::{TokenId, Tokenizer, Vocab};

//! Seeded synthetic text generation.
//!
//! The workload generators need large volumes of "background" text in which
//! to plant facts, with a controllable topical vocabulary so that embeddings
//! of chunks from the same topic are closer than chunks from different
//! topics (the property retrieval quality depends on).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tokenizer::{TokenId, Tokenizer};

/// A topical vocabulary: a pool of words biased towards one subject.
///
/// Each topic owns `width` dedicated words plus access to a shared common
/// pool; filler text drawn for a topic mixes the two, so same-topic texts
/// share far more tokens than cross-topic texts.
#[derive(Clone, Debug)]
pub struct TopicVocab {
    topic_words: Vec<TokenId>,
    common_words: Vec<TokenId>,
    /// Probability that a filler token is drawn from the topic pool.
    topic_bias: f64,
}

impl TopicVocab {
    /// Builds a topic vocabulary with `width` topic-specific words.
    ///
    /// `topic` namespaces the generated words so distinct topics never share
    /// topic-specific tokens.
    pub fn build(tokenizer: &mut Tokenizer, topic: &str, width: usize, common: usize) -> Self {
        let topic_words = (0..width)
            .map(|i| tokenizer.vocab_mut().intern(&format!("{topic}-{i}")))
            .collect();
        let common_words = (0..common)
            .map(|i| tokenizer.vocab_mut().intern(&format!("common-{i}")))
            .collect();
        Self {
            topic_words,
            common_words,
            topic_bias: 0.6,
        }
    }

    /// Overrides the topic bias (fraction of tokens drawn from the topic pool).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0, 1]`.
    pub fn with_topic_bias(mut self, bias: f64) -> Self {
        assert!((0.0..=1.0).contains(&bias), "bias must be in [0, 1]");
        self.topic_bias = bias;
        self
    }

    /// Words dedicated to this topic.
    pub fn topic_words(&self) -> &[TokenId] {
        &self.topic_words
    }
}

/// Deterministic filler-text generator.
///
/// # Examples
///
/// ```
/// use metis_text::{TextGen, Tokenizer, TopicVocab};
///
/// let mut tok = Tokenizer::new();
/// let topic = TopicVocab::build(&mut tok, "finance", 64, 128);
/// let mut g = TextGen::new(7);
/// let a = g.filler(&topic, 50);
/// assert_eq!(a.len(), 50);
/// // Same seed, same output.
/// let b = TextGen::new(7).filler(&topic, 50);
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct TextGen {
    rng: StdRng,
}

impl TextGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Produces `n` filler tokens drawn from `topic`.
    pub fn filler(&mut self, topic: &TopicVocab, n: usize) -> Vec<TokenId> {
        (0..n)
            .map(|_| {
                let from_topic = !topic.topic_words.is_empty()
                    && (topic.common_words.is_empty() || self.rng.gen_bool(topic.topic_bias));
                let pool = if from_topic {
                    &topic.topic_words
                } else {
                    &topic.common_words
                };
                pool[self.rng.gen_range(0..pool.len())]
            })
            .collect()
    }

    /// Produces a fact phrase of `n` tokens: unique "entity" words that do
    /// not collide with filler vocabulary, so token-level F1 against the
    /// ground-truth answer is meaningful.
    pub fn fact_phrase(
        &mut self,
        tokenizer: &mut Tokenizer,
        namespace: &str,
        n: usize,
    ) -> Vec<TokenId> {
        (0..n)
            .map(|i| {
                let salt: u32 = self.rng.gen();
                tokenizer
                    .vocab_mut()
                    .intern(&format!("fact-{namespace}-{salt:08x}-{i}"))
            })
            .collect()
    }

    /// Samples a value uniformly from `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }

    /// Samples `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Access to the underlying RNG for callers with bespoke needs.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Tokenizer, TopicVocab, TopicVocab) {
        let mut tok = Tokenizer::new();
        let a = TopicVocab::build(&mut tok, "finance", 50, 100);
        let b = TopicVocab::build(&mut tok, "sports", 50, 100);
        (tok, a, b)
    }

    #[test]
    fn filler_is_deterministic() {
        let (_, a, _) = setup();
        let x = TextGen::new(1).filler(&a, 200);
        let y = TextGen::new(1).filler(&a, 200);
        assert_eq!(x, y);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a, _) = setup();
        let x = TextGen::new(1).filler(&a, 200);
        let y = TextGen::new(2).filler(&a, 200);
        assert_ne!(x, y);
    }

    #[test]
    fn topics_share_only_common_words() {
        let (_, a, b) = setup();
        let xa: std::collections::HashSet<_> =
            TextGen::new(3).filler(&a, 500).into_iter().collect();
        let xb: std::collections::HashSet<_> =
            TextGen::new(4).filler(&b, 500).into_iter().collect();
        // Overlap exists (common pool) but topic words never cross.
        for w in a.topic_words() {
            assert!(!b.topic_words().contains(w));
        }
        assert!(xa.intersection(&xb).count() > 0);
    }

    #[test]
    fn fact_phrases_are_unique() {
        let mut tok = Tokenizer::new();
        let mut g = TextGen::new(9);
        let p1 = g.fact_phrase(&mut tok, "q1", 3);
        let p2 = g.fact_phrase(&mut tok, "q1", 3);
        assert_ne!(p1, p2);
        assert_eq!(p1.len(), 3);
    }

    #[test]
    fn range_handles_degenerate_bounds() {
        let mut g = TextGen::new(0);
        assert_eq!(g.range(5, 5), 5);
        assert_eq!(g.range(7, 3), 7);
    }
}

//! Word-level tokenizer with an interning vocabulary.
//!
//! The paper's pipeline tokenizes with the serving model's tokenizer; for the
//! synthetic reproduction a deterministic word-level tokenizer is sufficient
//! because every quantity the system reasons about (chunk sizes, KV-cache
//! bytes, prefill cost, F1 overlap) is a function of *token counts*, not of
//! subword identities.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a token in a [`Vocab`].
///
/// Token ids are dense: the `n`-th interned word receives id `n - 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TokenId(pub u32);

impl TokenId {
    /// Returns the raw index of this token.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An interning vocabulary mapping words to dense [`TokenId`]s.
///
/// # Examples
///
/// ```
/// use metis_text::Vocab;
///
/// let mut vocab = Vocab::new();
/// let a = vocab.intern("nvidia");
/// let b = vocab.intern("revenue");
/// assert_ne!(a, b);
/// assert_eq!(vocab.intern("nvidia"), a);
/// assert_eq!(vocab.word(a), Some("nvidia"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, TokenId>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, returning its id (existing or newly assigned).
    pub fn intern(&mut self, word: &str) -> TokenId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = TokenId(self.words.len() as u32);
        self.words.push(word.to_owned());
        self.index.insert(word.to_owned(), id);
        id
    }

    /// Looks up the id of `word` without interning it.
    pub fn lookup(&self, word: &str) -> Option<TokenId> {
        self.index.get(word).copied()
    }

    /// Returns the word behind `id`, if it exists.
    pub fn word(&self, id: TokenId) -> Option<&str> {
        self.words.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` when no word has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Deterministic whitespace tokenizer over a shared [`Vocab`].
///
/// Words are lower-cased and stripped of surrounding ASCII punctuation before
/// interning, so `"NVIDIA,"` and `"nvidia"` map to the same token — the same
/// normalization the paper's F1 metric applies (SQuAD-style).
#[derive(Clone, Debug, Default)]
pub struct Tokenizer {
    vocab: Vocab,
}

impl Tokenizer {
    /// Creates a tokenizer with an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalizes a single word: lower-case, trim ASCII punctuation.
    pub fn normalize(word: &str) -> String {
        word.trim_matches(|c: char| c.is_ascii_punctuation())
            .to_ascii_lowercase()
    }

    /// Encodes `text` into token ids, interning unseen words.
    pub fn encode(&mut self, text: &str) -> Vec<TokenId> {
        text.split_whitespace()
            .map(Self::normalize)
            .filter(|w| !w.is_empty())
            .map(|w| self.vocab.intern(&w))
            .collect()
    }

    /// Decodes token ids back into a space-joined string.
    ///
    /// Unknown ids are rendered with their [`TokenId`] display form so that
    /// decoding never fails; the simulator never produces unknown ids in
    /// practice.
    pub fn decode(&self, tokens: &[TokenId]) -> String {
        let mut out = String::new();
        for (i, &t) in tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match self.vocab.word(t) {
                Some(w) => out.push_str(w),
                None => out.push_str(&t.to_string()),
            }
        }
        out
    }

    /// Read access to the underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Mutable access to the underlying vocabulary.
    pub fn vocab_mut(&mut self) -> &mut Vocab {
        &mut self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("alpha");
        let b = v.intern("alpha");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut v = Vocab::new();
        for i in 0..100 {
            let id = v.intern(&format!("w{i}"));
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = Tokenizer::new();
        let toks = t.encode("the quick brown fox");
        assert_eq!(toks.len(), 4);
        assert_eq!(t.decode(&toks), "the quick brown fox");
    }

    #[test]
    fn normalization_folds_case_and_punctuation() {
        let mut t = Tokenizer::new();
        let a = t.encode("NVIDIA,");
        let b = t.encode("nvidia");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_words_are_dropped() {
        let mut t = Tokenizer::new();
        let toks = t.encode("a ,,, b");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn decode_unknown_id_does_not_panic() {
        let t = Tokenizer::new();
        let s = t.decode(&[TokenId(42)]);
        assert_eq!(s, "t42");
    }

    #[test]
    fn lookup_does_not_intern() {
        let v = Vocab::new();
        assert!(v.lookup("missing").is_none());
        assert!(v.is_empty());
    }
}

//! Token-level F1 score.
//!
//! The harmonic mean of precision (# correctly generated words / # generated
//! words) and recall (# correct words generated / # gold words), computed on
//! token multisets as in the SQuAD evaluation script — the metric the paper
//! adopts for all four datasets (§2, §7.1).

use std::collections::BTreeMap;

use metis_text::TokenId;

// BTreeMap (not HashMap): this crate feeds reports, and the lint's
// nondeterministic-iteration rule requires ordered containers so every
// iteration order — and thus every emitted artifact — is reproducible.
fn counts(tokens: &[TokenId]) -> BTreeMap<TokenId, u32> {
    let mut m = BTreeMap::new();
    for &t in tokens {
        *m.entry(t).or_insert(0) += 1;
    }
    m
}

/// Computes token-level F1 of `predicted` against `gold`.
///
/// Both empty: 1.0 (exact agreement). One empty: 0.0.
///
/// # Examples
///
/// ```
/// use metis_metrics::f1_score;
/// use metis_text::TokenId;
///
/// let gold = [TokenId(1), TokenId(2)];
/// let pred = [TokenId(1), TokenId(3)];
/// // Precision 1/2, recall 1/2 → F1 = 0.5.
/// assert!((f1_score(&pred, &gold) - 0.5).abs() < 1e-9);
/// ```
pub fn f1_score(predicted: &[TokenId], gold: &[TokenId]) -> f64 {
    if predicted.is_empty() && gold.is_empty() {
        return 1.0;
    }
    if predicted.is_empty() || gold.is_empty() {
        return 0.0;
    }
    let pc = counts(predicted);
    let gc = counts(gold);
    let mut matched: u32 = 0;
    for (t, &n) in &pc {
        if let Some(&g) = gc.get(t) {
            matched += n.min(g);
        }
    }
    if matched == 0 {
        return 0.0;
    }
    let precision = f64::from(matched) / predicted.len() as f64;
    let recall = f64::from(matched) / gold.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ids: &[u32]) -> Vec<TokenId> {
        ids.iter().map(|&i| TokenId(i)).collect()
    }

    #[test]
    fn exact_match_is_one() {
        let a = toks(&[1, 2, 3]);
        assert_eq!(f1_score(&a, &a), 1.0);
    }

    #[test]
    fn order_does_not_matter() {
        assert_eq!(f1_score(&toks(&[1, 2, 3]), &toks(&[3, 1, 2])), 1.0);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(f1_score(&toks(&[1, 2]), &toks(&[3, 4])), 0.0);
    }

    #[test]
    fn multiplicity_is_respected() {
        // Gold has two 1s; predicting one 1 gives matched=1.
        let f1 = f1_score(&toks(&[1]), &toks(&[1, 1]));
        // p=1, r=0.5 → 2/3.
        assert!((f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn boilerplate_lowers_precision_only() {
        let gold = toks(&[1, 2, 3, 4]);
        let clean = toks(&[1, 2, 3, 4]);
        let padded = toks(&[1, 2, 3, 4, 9, 9, 9, 9]);
        assert_eq!(f1_score(&clean, &gold), 1.0);
        // p=0.5, r=1 → 2/3.
        assert!((f1_score(&padded, &gold) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(f1_score(&[], &[]), 1.0);
        assert_eq!(f1_score(&toks(&[1]), &[]), 0.0);
        assert_eq!(f1_score(&[], &toks(&[1])), 0.0);
    }

    #[test]
    fn f1_is_symmetric() {
        let a = toks(&[1, 2, 3, 5, 5]);
        let b = toks(&[2, 3, 4]);
        assert!((f1_score(&a, &b) - f1_score(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn f1_in_unit_interval() {
        let a = toks(&[1, 1, 2, 7]);
        let b = toks(&[1, 2, 2, 9, 9]);
        let f = f1_score(&a, &b);
        assert!((0.0..=1.0).contains(&f));
    }
}

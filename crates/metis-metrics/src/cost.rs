//! Dollar-cost model (Fig. 13).
//!
//! Serving cost = GPU-hours × hourly rate; profiler/API cost = token prices.
//! Rates follow common on-demand cloud pricing for the paper's hardware.

/// Pricing table for a deployment.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// $ per GPU-hour per A40.
    pub usd_per_gpu_hour: f64,
    /// GPUs used by the serving model.
    pub gpus: u32,
}

impl CostModel {
    /// On-demand A40 pricing (~$0.79/GPU-hour), `gpus` devices.
    pub fn a40(gpus: u32) -> Self {
        Self {
            usd_per_gpu_hour: 0.79,
            gpus,
        }
    }
}

/// Accumulated cost of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunCost {
    /// GPU busy time in seconds.
    pub gpu_busy_secs: f64,
    /// API dollars spent (profiler calls, API serving models).
    pub api_usd: f64,
}

impl RunCost {
    /// Adds API spend.
    pub fn add_api(&mut self, usd: f64) {
        self.api_usd += usd;
    }

    /// Adds GPU busy seconds.
    pub fn add_gpu_secs(&mut self, secs: f64) {
        self.gpu_busy_secs += secs;
    }

    /// Total dollars under `model`.
    pub fn total_usd(&self, model: &CostModel) -> f64 {
        self.gpu_busy_secs / 3600.0 * model.usd_per_gpu_hour * f64::from(model.gpus) + self.api_usd
    }

    /// Dollars per query for a run of `queries` queries.
    pub fn usd_per_query(&self, model: &CostModel, queries: usize) -> f64 {
        if queries == 0 {
            0.0
        } else {
            self.total_usd(model) / queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_cost_scales_with_time_and_devices() {
        let mut rc = RunCost::default();
        rc.add_gpu_secs(3600.0);
        assert!((rc.total_usd(&CostModel::a40(1)) - 0.79).abs() < 1e-9);
        assert!((rc.total_usd(&CostModel::a40(2)) - 1.58).abs() < 1e-9);
    }

    #[test]
    fn api_cost_adds_linearly() {
        let mut rc = RunCost::default();
        rc.add_api(0.5);
        rc.add_api(0.25);
        assert!((rc.total_usd(&CostModel::a40(0)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn per_query_cost() {
        let mut rc = RunCost::default();
        rc.add_api(1.0);
        assert!((rc.usd_per_query(&CostModel::a40(0), 100) - 0.01).abs() < 1e-12);
        assert_eq!(rc.usd_per_query(&CostModel::a40(0), 0), 0.0);
    }
}

//! A minimal, dependency-free JSON value model with a writer and a
//! recursive-descent parser.
//!
//! The vendored dependency set has no `serde`, so the bench-report pipeline
//! ([`report`](crate::report)) hand-rolls its serialization on top of this
//! module. Scope is deliberately small but *correct*:
//!
//! * Full string escaping on write (`"`, `\`, control characters as
//!   `\u00XX`) and full unescaping on read (all JSON escapes, `\uXXXX`
//!   including UTF-16 surrogate pairs).
//! * Numbers keep u64 integers exact: values written from a [`Json::UInt`]
//!   (seeds, counters) round-trip bit-for-bit instead of passing through
//!   `f64`'s 53-bit mantissa. Floats render via Rust's shortest round-trip
//!   `Display`, so `parse(render(x)) == x` for every finite `f64`.
//! * Objects preserve insertion order (they are association lists, not
//!   maps), which keeps rendered reports stable for golden-file tests.
//!
//! Non-finite floats are not representable in JSON; [`Json::render`] panics
//! on them rather than silently emitting `null` — report metrics are
//! asserted finite upstream.

use std::fmt::Write as _;

/// A parsed or buildable JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer written without a decimal point; exact for
    /// the full `u64` range (unlike a round-trip through `f64`).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered association list.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Renders the value as compact JSON.
    ///
    /// # Panics
    ///
    /// Panics if the value contains a non-finite number (JSON cannot
    /// represent NaN/∞; report metrics are finite by construction).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Renders the value with `indent`-space indentation per nesting level
    /// — the stable layout the golden-file tests pin.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(indent), 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                assert!(x.is_finite(), "JSON cannot represent {x}");
                // Rust's Display for f64 is shortest-round-trip, but renders
                // integral values without a decimal point; keep them valid
                // (they are) and exact.
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters after document", pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` ([`Json::UInt`] converts; may round above 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an exact `u64` (floats only when integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(message: impl Into<String>, offset: usize) -> JsonError {
    JsonError {
        message: message.into(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(format!("expected '{}'", byte as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(err(format!("unexpected byte '{}'", b as char), *pos)),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(format!("expected '{word}'"), *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: a \uXXXX low surrogate must
                            // follow; combine into one scalar value.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(err("lone high surrogate", *pos));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(err("invalid low surrogate", *pos));
                            }
                            let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(scalar)
                                .ok_or_else(|| err("invalid surrogate pair", *pos))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| err("lone low surrogate", *pos))?
                        };
                        out.push(c);
                        continue; // `pos` already past the escape.
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(err("unescaped control character in string", *pos)),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid; find the next char boundary).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("invalid UTF-8", *pos))?;
                let c = rest.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err(err("truncated \\u escape", *pos));
    }
    let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| err("bad \\u escape", *pos))?;
    let v = u32::from_str_radix(s, 16).map_err(|_| err("bad \\u escape", *pos))?;
    *pos = end;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    let negative = bytes.get(*pos) == Some(&b'-');
    if negative {
        *pos += 1;
    }
    let digits = |pos: &mut usize| {
        let from = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(pos) {
        return Err(err("malformed number", start));
    }
    let mut is_int = true;
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        is_int = false;
        if !digits(pos) {
            return Err(err("digits required after decimal point", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        is_int = false;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(pos) {
            return Err(err("digits required in exponent", *pos));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    // Unsigned integers parse exactly; everything else goes through f64.
    if is_int && !negative {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err("malformed number", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::UInt(0), "0"),
            (Json::UInt(u64::MAX), "18446744073709551615"),
            (Json::Num(-1.5), "-1.5"),
            (Json::Str("a\"b\\c".into()), r#""a\"b\\c""#),
        ] {
            assert_eq!(v.render(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn u64_round_trips_exactly_past_f64_precision() {
        // 2^53 + 1 is not representable in f64; the UInt path keeps it.
        let v = Json::UInt((1u64 << 53) + 1);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn shortest_float_display_round_trips() {
        for x in [0.1, 1e-300, std::f64::consts::PI, -2.2250738585072014e-308] {
            let v = Json::Num(x);
            assert_eq!(Json::parse(&v.render()).unwrap().as_f64(), Some(x));
        }
    }

    #[test]
    fn control_characters_and_unicode_escape_correctly() {
        let s = "tab\there\nnewline \u{1} snowman ☃ emoji 🦀";
        let v = Json::Str(s.into());
        let rendered = v.render();
        assert!(rendered.contains("\\t") && rendered.contains("\\u0001"));
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
        // Surrogate-pair escapes decode to one scalar.
        assert_eq!(
            Json::parse(r#""\ud83e\udd80""#).unwrap().as_str(),
            Some("🦀")
        );
    }

    #[test]
    fn nested_structures_round_trip_via_pretty_and_compact() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::UInt(1), Json::Null])),
            (
                "b".into(),
                Json::Obj(vec![("empty".into(), Json::Arr(vec![]))]),
            ),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty(2)).unwrap(), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let parsed = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let Json::Obj(fields) = &parsed else {
            panic!("object expected")
        };
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            r#"{"a" 1}"#,
            "tru",
            "1.2.3",
            "-",
            "1.",
            "1e",
            "\"\\q\"",
            "\"unterminated",
            "[1] extra",
            "\"\u{1}\"",
            r#""\ud800""#,
        ] {
            let e = Json::parse(bad);
            assert!(e.is_err(), "accepted malformed input {bad:?}");
        }
        let e = Json::parse("[1 2]").unwrap_err();
        assert!(e.to_string().contains("at byte"), "got: {e}");
    }

    #[test]
    fn accessors_select_by_type() {
        let v = Json::parse(r#"{"n": 3, "x": 1.5, "s": "hi", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("x").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}

//! Machine-readable benchmark reports (the perf-history schema).
//!
//! Every bench target and CLI run can emit a [`BenchReport`]: one JSON
//! document per experiment holding a [`CellReport`] per (config × seed ×
//! load) cell — experiment knobs, per-cell F1, full latency / queue-wait /
//! retrieval percentile vectors, per-stage delay breakdown, throughput,
//! preemptions, and cost. CI diffs these against committed baselines, so
//! the schema is deliberately explicit:
//!
//! * [`SCHEMA_VERSION`] is bumped on breaking field changes, and
//!   [`BenchReport::from_json`] fails loudly (naming the field) on any
//!   missing or mistyped field — an accidental rename cannot parse as an
//!   empty metric.
//! * Serialization is hand-rolled over [`Json`] (the
//!   vendored dependency set has no serde) and round-trips exactly:
//!   `parse(render(r)) == r` for every finite report, including `u64`
//!   seeds beyond 2⁵³.
//!
//! ## Percentile estimator
//!
//! All percentile vectors come from [`LatencySummary`]'s *nearest-rank*
//! estimator (see its docs): with `n` samples, every percentile above
//! `100·(n−1)/n` equals the maximum. Reports therefore always carry the
//! sample `count` next to each summary — a p99 over 8 samples *is* the max,
//! and the gate tooling treats it with the tolerance that deserves.

use crate::json::{Json, JsonError};
use crate::latency::LatencySummary;

/// Version stamped into every report; bump on breaking schema changes.
pub const SCHEMA_VERSION: u64 = 1;

/// The percentile grid every summary materializes (in percent).
pub const PERCENTILE_GRID: [f64; 9] = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];

/// One-line description of the percentile estimator, embedded in every
/// report so a consumer never has to guess how the vectors were computed.
pub const PERCENTILE_ESTIMATOR: &str = "nearest-rank: value at ceil(p/100*count) of the sorted \
     samples (p=0 -> minimum); with count samples every p > 100*(count-1)/count equals max";

/// Distribution summary of one metric: count, mean, min/max, and the value
/// at every percentile of [`PERCENTILE_GRID`].
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryStats {
    /// Number of samples (0 when the metric did not apply; all other
    /// fields are then 0). Consumers MUST read tail percentiles in light
    /// of this — see [`PERCENTILE_ESTIMATOR`].
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// `(percentile, value)` pairs on [`PERCENTILE_GRID`].
    pub percentiles: Vec<(f64, f64)>,
}

impl SummaryStats {
    /// Summarizes a latency distribution on the standard grid.
    pub fn of(summary: &LatencySummary) -> Self {
        Self {
            count: summary.len() as u64,
            mean: summary.mean(),
            min: summary.min(),
            max: summary.max(),
            percentiles: PERCENTILE_GRID
                .iter()
                .map(|&p| (p, summary.percentile(p)))
                .collect(),
        }
    }

    /// An all-zero summary for metrics that did not apply.
    pub fn empty() -> Self {
        Self::of(&LatencySummary::new(Vec::new()))
    }

    /// The value at percentile `p`, if `p` is on the materialized grid.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.percentiles
            .iter()
            .find(|(grid_p, _)| *grid_p == p)
            .map(|(_, v)| *v)
    }

    /// Median convenience accessor.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0).unwrap_or(0.0)
    }

    /// Tail convenience accessor (see [`PERCENTILE_ESTIMATOR`] for its
    /// meaning at small `count`).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0).unwrap_or(0.0)
    }

    /// Whether the p99 is actually distinguishable from the max at this
    /// sample count (nearest-rank needs at least 100 samples for that).
    pub fn tail_is_resolved(&self) -> bool {
        self.count >= 100
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::UInt(self.count)),
            ("mean".into(), Json::Num(self.mean)),
            ("min".into(), Json::Num(self.min)),
            ("max".into(), Json::Num(self.max)),
            (
                "percentiles".into(),
                Json::Arr(
                    self.percentiles
                        .iter()
                        .map(|&(p, v)| Json::Arr(vec![Json::Num(p), Json::Num(v)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json, at: &str) -> Result<Self, SchemaError> {
        Ok(Self {
            count: req_u64(v, "count", at)?,
            mean: req_f64(v, "mean", at)?,
            min: req_f64(v, "min", at)?,
            max: req_f64(v, "max", at)?,
            percentiles: req_arr(v, "percentiles", at)?
                .iter()
                .map(|pair| -> Result<(f64, f64), SchemaError> {
                    let items = pair.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                        SchemaError::new(format!("{at}.percentiles"), "expected [p, value] pair")
                    })?;
                    let p = items[0].as_f64().ok_or_else(|| {
                        SchemaError::new(format!("{at}.percentiles"), "non-numeric percentile")
                    })?;
                    let val = items[1].as_f64().ok_or_else(|| {
                        SchemaError::new(format!("{at}.percentiles"), "non-numeric value")
                    })?;
                    Ok((p, val))
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

/// One experiment cell: a single run at one configuration point.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// Unique cell id within the report (e.g. `"musique/metis/2.00x"`).
    pub id: String,
    /// Cell-level configuration knobs, as `(name, value)` strings.
    pub knobs: Vec<(String, String)>,
    /// The seed the cell ran with.
    pub seed: u64,
    /// Queries the cell served.
    pub queries: u64,
    /// Mean token F1.
    pub f1: f64,
    /// End-to-end delay distribution (seconds).
    pub latency: SummaryStats,
    /// Engine queue-wait distribution (seconds).
    pub queue_wait: SummaryStats,
    /// Retrieval-latency distribution (seconds).
    pub retrieval: SummaryStats,
    /// Mean seconds per pipeline stage (`profile`/`decide`/`retrieve`/
    /// `queue_wait`/`prefill`/`decode`), empty when not applicable.
    pub stages: Vec<(String, f64)>,
    /// Completed queries per second over the makespan.
    pub throughput_qps: f64,
    /// Preemptions across all replicas.
    pub preemptions: u64,
    /// GPU busy seconds summed across replicas.
    pub gpu_busy_secs: f64,
    /// API dollars spent.
    pub api_cost_usd: f64,
    /// Mean ground-truth retrieval recall.
    pub retrieval_recall: f64,
    /// Bench-specific scalar metrics (micro medians, recall@k, …).
    pub extra: Vec<(String, f64)>,
}

impl CellReport {
    /// An all-zero cell with `id` and `seed` — benches fill what applies.
    pub fn new(id: impl Into<String>, seed: u64) -> Self {
        Self {
            id: id.into(),
            knobs: Vec::new(),
            seed,
            queries: 0,
            f1: 0.0,
            latency: SummaryStats::empty(),
            queue_wait: SummaryStats::empty(),
            retrieval: SummaryStats::empty(),
            stages: Vec::new(),
            throughput_qps: 0.0,
            preemptions: 0,
            gpu_busy_secs: 0.0,
            api_cost_usd: 0.0,
            retrieval_recall: 0.0,
            extra: Vec::new(),
        }
    }

    /// Adds one cell-level knob (builder-style).
    pub fn knob(mut self, name: impl Into<String>, value: impl ToString) -> Self {
        self.knobs.push((name.into(), value.to_string()));
        self
    }

    /// Adds one bench-specific scalar metric (builder-style).
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.extra.push((name.into(), value));
        self
    }

    /// Looks up a bench-specific scalar by name.
    pub fn extra_metric(&self, name: &str) -> Option<f64> {
        self.extra.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a cell-level knob by name (e.g. `knob_value("driver")` to
    /// tell realtime cells from simulated ones).
    pub fn knob_value(&self, name: &str) -> Option<&str> {
        self.knobs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("knobs".into(), knobs_to_json(&self.knobs)),
            ("seed".into(), Json::UInt(self.seed)),
            ("queries".into(), Json::UInt(self.queries)),
            ("f1".into(), Json::Num(self.f1)),
            ("latency".into(), self.latency.to_json()),
            ("queue_wait".into(), self.queue_wait.to_json()),
            ("retrieval".into(), self.retrieval.to_json()),
            (
                "stages".into(),
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            ("throughput_qps".into(), Json::Num(self.throughput_qps)),
            ("preemptions".into(), Json::UInt(self.preemptions)),
            ("gpu_busy_secs".into(), Json::Num(self.gpu_busy_secs)),
            ("api_cost_usd".into(), Json::Num(self.api_cost_usd)),
            ("retrieval_recall".into(), Json::Num(self.retrieval_recall)),
            (
                "extra".into(),
                Json::Obj(
                    self.extra
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let id = req_str(v, "id", "cell")?;
        let at = format!("cell[{id}]");
        Ok(Self {
            knobs: knobs_from_json(req_field(v, "knobs", &at)?, &at)?,
            seed: req_u64(v, "seed", &at)?,
            queries: req_u64(v, "queries", &at)?,
            f1: req_f64(v, "f1", &at)?,
            latency: SummaryStats::from_json(req_field(v, "latency", &at)?, &at)?,
            queue_wait: SummaryStats::from_json(req_field(v, "queue_wait", &at)?, &at)?,
            retrieval: SummaryStats::from_json(req_field(v, "retrieval", &at)?, &at)?,
            stages: named_f64s(req_field(v, "stages", &at)?, &at)?,
            throughput_qps: req_f64(v, "throughput_qps", &at)?,
            preemptions: req_u64(v, "preemptions", &at)?,
            gpu_busy_secs: req_f64(v, "gpu_busy_secs", &at)?,
            api_cost_usd: req_f64(v, "api_cost_usd", &at)?,
            retrieval_recall: req_f64(v, "retrieval_recall", &at)?,
            extra: named_f64s(req_field(v, "extra", &at)?, &at)?,
            id,
        })
    }
}

/// A whole experiment: metadata plus one [`CellReport`] per cell.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Experiment name — also the emitted file stem (e.g.
    /// `"fig11_throughput"`).
    pub experiment: String,
    /// Human-readable one-liner.
    pub title: String,
    /// Experiment-level knobs (dataset sizes, env overrides, …).
    pub knobs: Vec<(String, String)>,
    /// Seed used for dataset construction.
    pub dataset_seed: u64,
    /// Base seed for run stochasticity (cells derive their own from it).
    pub run_seed: u64,
    /// The cells, in deterministic sweep order.
    pub cells: Vec<CellReport>,
}

impl BenchReport {
    /// An empty report for `experiment`.
    pub fn new(experiment: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            experiment: experiment.into(),
            title: title.into(),
            knobs: Vec::new(),
            dataset_seed: 0,
            run_seed: 0,
            cells: Vec::new(),
        }
    }

    /// Adds one experiment-level knob (builder-style).
    pub fn knob(mut self, name: impl Into<String>, value: impl ToString) -> Self {
        self.knobs.push((name.into(), value.to_string()));
        self
    }

    /// Finds a cell by id.
    pub fn cell(&self, id: &str) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.id == id)
    }

    /// Renders the full report as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = self.to_json().render_pretty(2);
        out.push('\n');
        out
    }

    /// Parses a rendered report, failing loudly on schema drift.
    pub fn parse(text: &str) -> Result<Self, SchemaError> {
        let v = Json::parse(text).map_err(SchemaError::from)?;
        Self::from_json(&v)
    }

    /// Lowers the report to a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::UInt(SCHEMA_VERSION)),
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            (
                "percentile_estimator".into(),
                Json::Str(PERCENTILE_ESTIMATOR.into()),
            ),
            ("knobs".into(), knobs_to_json(&self.knobs)),
            ("dataset_seed".into(), Json::UInt(self.dataset_seed)),
            ("run_seed".into(), Json::UInt(self.run_seed)),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(CellReport::to_json).collect()),
            ),
        ])
    }

    /// Raises a JSON value back into a report.
    pub fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let version = req_u64(v, "schema_version", "report")?;
        if version != SCHEMA_VERSION {
            return Err(SchemaError::new(
                "report.schema_version",
                format!("unsupported version {version} (this build reads {SCHEMA_VERSION})"),
            ));
        }
        Ok(Self {
            experiment: req_str(v, "experiment", "report")?,
            title: req_str(v, "title", "report")?,
            knobs: knobs_from_json(req_field(v, "knobs", "report")?, "report")?,
            dataset_seed: req_u64(v, "dataset_seed", "report")?,
            run_seed: req_u64(v, "run_seed", "report")?,
            cells: req_arr(v, "cells", "report")?
                .iter()
                .map(CellReport::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// A report that did not match the schema: which field, and why.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemaError {
    /// Dotted path of the offending field.
    pub field: String,
    /// What went wrong.
    pub message: String,
}

impl SchemaError {
    fn new(field: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            field: field.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

impl std::error::Error for SchemaError {}

impl From<JsonError> for SchemaError {
    fn from(e: JsonError) -> Self {
        SchemaError::new("document", e.to_string())
    }
}

fn knobs_to_json(knobs: &[(String, String)]) -> Json {
    Json::Obj(
        knobs
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    )
}

fn knobs_from_json(v: &Json, at: &str) -> Result<Vec<(String, String)>, SchemaError> {
    let Json::Obj(fields) = v else {
        return Err(SchemaError::new(format!("{at}.knobs"), "expected object"));
    };
    fields
        .iter()
        .map(|(k, v)| {
            v.as_str()
                .map(|s| (k.clone(), s.to_owned()))
                .ok_or_else(|| SchemaError::new(format!("{at}.knobs.{k}"), "expected string"))
        })
        .collect()
}

fn named_f64s(v: &Json, at: &str) -> Result<Vec<(String, f64)>, SchemaError> {
    let Json::Obj(fields) = v else {
        return Err(SchemaError::new(at.to_owned(), "expected object"));
    };
    fields
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|x| (k.clone(), x))
                .ok_or_else(|| SchemaError::new(format!("{at}.{k}"), "expected number"))
        })
        .collect()
}

fn req_field<'a>(v: &'a Json, key: &str, at: &str) -> Result<&'a Json, SchemaError> {
    v.get(key)
        .ok_or_else(|| SchemaError::new(format!("{at}.{key}"), "missing field"))
}

fn req_u64(v: &Json, key: &str, at: &str) -> Result<u64, SchemaError> {
    req_field(v, key, at)?
        .as_u64()
        .ok_or_else(|| SchemaError::new(format!("{at}.{key}"), "expected unsigned integer"))
}

fn req_f64(v: &Json, key: &str, at: &str) -> Result<f64, SchemaError> {
    req_field(v, key, at)?
        .as_f64()
        .ok_or_else(|| SchemaError::new(format!("{at}.{key}"), "expected number"))
}

fn req_str(v: &Json, key: &str, at: &str) -> Result<String, SchemaError> {
    req_field(v, key, at)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| SchemaError::new(format!("{at}.{key}"), "expected string"))
}

fn req_arr<'a>(v: &'a Json, key: &str, at: &str) -> Result<&'a [Json], SchemaError> {
    req_field(v, key, at)?
        .as_arr()
        .ok_or_else(|| SchemaError::new(format!("{at}.{key}"), "expected array"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let lat = LatencySummary::new(vec![1.0, 2.0, 3.5, 0.25]);
        let mut report = BenchReport::new("unit_test", "a synthetic report")
            .knob("dataset", "musique")
            .knob("queries", 4);
        report.dataset_seed = 20_241_016;
        report.run_seed = u64::MAX; // Exercises exact u64 round-trip.
        let cell = CellReport {
            queries: 4,
            f1: 0.625,
            latency: SummaryStats::of(&lat),
            queue_wait: SummaryStats::empty(),
            retrieval: SummaryStats::of(&LatencySummary::new(vec![0.01, 0.02])),
            stages: vec![("profile".into(), 0.2), ("decode".into(), 1.1)],
            throughput_qps: 1.5,
            preemptions: 3,
            gpu_busy_secs: 12.25,
            api_cost_usd: 0.004,
            retrieval_recall: 0.9,
            ..CellReport::new("musique/metis/1.00x", 99)
        }
        .knob("system", "metis")
        .metric("chunk_recall_at_8", 0.97);
        report.cells.push(cell);
        report.cells.push(CellReport::new("empty/cell", 7));
        report
    }

    #[test]
    fn report_round_trips_exactly() {
        let report = sample_report();
        let parsed = BenchReport::parse(&report.render()).expect("round-trip parse");
        assert_eq!(parsed, report);
    }

    #[test]
    fn summary_stats_match_the_latency_summary() {
        let lat = LatencySummary::new(vec![4.0, 1.0, 3.0, 2.0, 5.0]);
        let s = SummaryStats::of(&lat);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50(), 3.0);
        assert_eq!(s.p99(), 5.0, "p99 over 5 samples is the max");
        assert!(!s.tail_is_resolved(), "5 samples cannot resolve a p99");
        assert_eq!(s.percentile(0.0), Some(1.0), "p0 is the minimum");
        assert_eq!(s.percentiles.len(), PERCENTILE_GRID.len());
    }

    #[test]
    fn missing_fields_fail_loudly_with_the_field_name() {
        let report = sample_report();
        let mut v = report.to_json();
        // Simulate an accidental rename of a cell metric.
        if let Json::Obj(fields) = &mut v {
            let cells = fields
                .iter_mut()
                .find(|(k, _)| k == "cells")
                .map(|(_, v)| v)
                .expect("cells field");
            if let Json::Arr(items) = cells {
                if let Json::Obj(cell) = &mut items[0] {
                    for (k, _) in cell.iter_mut() {
                        if k == "throughput_qps" {
                            *k = "thruput_qps".into();
                        }
                    }
                }
            }
        }
        let e = BenchReport::from_json(&v).expect_err("rename must not parse");
        assert!(
            e.to_string().contains("throughput_qps"),
            "error names the missing field: {e}"
        );
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut v = sample_report().to_json();
        if let Json::Obj(fields) = &mut v {
            fields[0].1 = Json::UInt(SCHEMA_VERSION + 1);
        }
        let e = BenchReport::from_json(&v).expect_err("future version must not parse");
        assert!(e.to_string().contains("unsupported version"), "got: {e}");
    }

    #[test]
    fn estimator_note_is_embedded() {
        let text = sample_report().render();
        assert!(text.contains("nearest-rank"), "estimator note missing");
        assert!(
            text.contains("\"count\""),
            "counts must accompany summaries"
        );
    }
}

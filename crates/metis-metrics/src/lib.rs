//! Evaluation metrics for the METIS reproduction.
//!
//! * Token-level F1 (§2's response-quality metric, SQuAD-style).
//! * Latency distributions (mean/percentiles) and throughput.
//! * The dollar-cost model behind the paper's Fig. 13.
//! * Machine-readable benchmark reports ([`report`]) over a hand-rolled,
//!   dependency-free JSON writer/parser ([`json`]) — the schema the bench
//!   harness emits and the CI perf gate diffs against baselines.

pub mod cost;
pub mod f1;
pub mod json;
pub mod latency;
pub mod report;

pub use cost::{CostModel, RunCost};
pub use f1::f1_score;
pub use json::{Json, JsonError};
pub use latency::{LatencySummary, ThroughputSummary};
pub use report::{
    BenchReport, CellReport, SchemaError, SummaryStats, PERCENTILE_ESTIMATOR, PERCENTILE_GRID,
    SCHEMA_VERSION,
};

//! Evaluation metrics for the METIS reproduction.
//!
//! * Token-level F1 (§2's response-quality metric, SQuAD-style).
//! * Latency distributions (mean/percentiles) and throughput.
//! * The dollar-cost model behind the paper's Fig. 13.

pub mod cost;
pub mod f1;
pub mod latency;

pub use cost::{CostModel, RunCost};
pub use f1::f1_score;
pub use latency::{LatencySummary, ThroughputSummary};

//! Latency and throughput summaries.

/// Summary statistics over a set of per-query delays (seconds).
#[derive(Clone, Debug)]
pub struct LatencySummary {
    sorted: Vec<f64>,
    sum: f64,
}

impl LatencySummary {
    /// Builds a summary from raw delays.
    ///
    /// # Panics
    ///
    /// Panics if any delay is negative or non-finite.
    pub fn new(mut delays: Vec<f64>) -> Self {
        for &d in &delays {
            assert!(d.is_finite() && d >= 0.0, "invalid delay {d}");
        }
        delays.sort_by(|a, b| a.total_cmp(b));
        let sum = delays.iter().sum();
        Self {
            sorted: delays,
            sum,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when the summary holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mean delay (0 for an empty set).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sum / self.sorted.len() as f64
        }
    }

    /// Percentile by the *nearest-rank* estimator: the value at sorted
    /// index `ceil(p/100 · n)` (1-based), with `p = 0` defined as the
    /// minimum (`p` in `[0, 100]`; 0 for an empty set).
    ///
    /// Nearest-rank always returns an observed sample — it never
    /// interpolates — which makes it exact for golden comparisons but
    /// coarse at small `n`: with `n` samples every percentile above
    /// `100·(n−1)/n` *is* the maximum (e.g. p99 == max for `n < 100`, and
    /// for `n = 1` every percentile is the single sample). Reports built
    /// from these summaries carry the sample count alongside each
    /// percentile vector so consumers can tell a resolved tail from a
    /// saturated one.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.sorted.is_empty() {
            return 0.0;
        }
        // ceil maps p = 0 to rank 0; the max(1) below is exactly the
        // "p0 := minimum" convention documented above (ranks are 1-based,
        // and rank never exceeds n because p <= 100).
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.max(1) - 1]
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail (p99).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Maximum delay (0 for an empty set).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Minimum delay (0 for an empty set) — also `percentile(0.0)`.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }
}

/// Throughput over a run.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputSummary {
    /// Completed queries.
    pub completed: usize,
    /// Virtual makespan in seconds (first arrival to last completion).
    pub makespan_secs: f64,
}

impl ThroughputSummary {
    /// Queries per second (0 for a degenerate makespan).
    pub fn qps(&self) -> f64 {
        if self.makespan_secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let s = LatencySummary::new(vec![4.0, 1.0, 3.0, 2.0, 5.0]);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.p50(), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = LatencySummary::new(vec![]);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample() {
        let s = LatencySummary::new(vec![2.5]);
        assert_eq!(s.p50(), 2.5);
        assert_eq!(s.percentile(1.0), 2.5);
    }

    #[test]
    fn percentile_zero_is_the_minimum() {
        let s = LatencySummary::new(vec![4.0, 1.0, 9.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(LatencySummary::new(vec![]).min(), 0.0);
    }

    #[test]
    fn nearest_rank_edges_at_tiny_counts() {
        // n = 1: every percentile is the single sample.
        let one = LatencySummary::new(vec![7.0]);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(one.percentile(p), 7.0, "n=1, p={p}");
        }
        // n = 2: rank(p) = ceil(p/50): p <= 50 hits the first sample,
        // p > 50 the second; p99 therefore equals max — the documented
        // saturation of the estimator at small counts.
        let two = LatencySummary::new(vec![1.0, 3.0]);
        assert_eq!(two.percentile(0.0), 1.0);
        assert_eq!(two.percentile(50.0), 1.0);
        assert_eq!(two.percentile(50.1), 3.0);
        assert_eq!(two.p99(), 3.0);
        assert_eq!(two.p99(), two.max(), "p99 saturates to max below n=100");
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn negative_delay_rejected() {
        let _ = LatencySummary::new(vec![-1.0]);
    }

    #[test]
    fn qps_counts_completions_per_second() {
        let t = ThroughputSummary {
            completed: 100,
            makespan_secs: 50.0,
        };
        assert!((t.qps() - 2.0).abs() < 1e-12);
        let degenerate = ThroughputSummary {
            completed: 5,
            makespan_secs: 0.0,
        };
        assert_eq!(degenerate.qps(), 0.0);
    }
}

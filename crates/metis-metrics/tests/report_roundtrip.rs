//! Property tests for the bench-report pipeline: arbitrary reports survive
//! emit → parse bit-for-bit, including adversarial strings and `u64` seeds
//! beyond `f64`'s 53-bit mantissa.

use metis_metrics::{BenchReport, CellReport, Json, LatencySummary, SummaryStats};
use proptest::prelude::*;

/// Builds a printable-but-adversarial string from raw code points: quotes,
/// backslashes, control characters, and astral-plane scalars all appear.
fn string_from(raw: &[(u32, u8)]) -> String {
    raw.iter()
        .map(|&(cp, class)| match class % 4 {
            0 => char::from_u32(cp % 0x20).unwrap_or('\u{1}'), // Controls.
            1 => ['"', '\\', '/', '\u{7f}', '☃'][(cp % 5) as usize],
            2 => char::from_u32(0x1F300 + cp % 0x100).unwrap_or('🦀'), // Astral.
            _ => char::from_u32(cp % 0xD800).unwrap_or('x'),           // BMP scalars.
        })
        .collect()
}

/// A finite, possibly-negative metric value from raw parts.
fn metric(mantissa: i64, shift: u8) -> f64 {
    mantissa as f64 / f64::from(1u32 << (shift % 31))
}

proptest! {
    /// emit → parse is the identity on arbitrary reports.
    #[test]
    fn arbitrary_reports_round_trip(
        experiment in prop::collection::vec((0u32..0x11_0000, 0u8..8), 0..6),
        knobs in prop::collection::vec(
            (prop::collection::vec((0u32..0x11_0000, 0u8..8), 0..5),
             prop::collection::vec((0u32..0x11_0000, 0u8..8), 0..5)),
            0..4),
        dataset_seed in any::<u64>(),
        run_seed in any::<u64>(),
        cells in prop::collection::vec(
            // (id raw, seed, queries, samples, stage metric raw, extra raw)
            (prop::collection::vec((0u32..0x11_0000, 0u8..8), 0..6),
             any::<u64>(),
             0u64..10_000,
             prop::collection::vec(0.0f64..1e6, 0..12),
             (-1_000_000i64..1_000_000, 0u8..31),
             (-1_000_000i64..1_000_000, 0u8..31)),
            0..5),
    ) {
        let mut report = BenchReport::new(string_from(&experiment), "prop");
        for (k, v) in &knobs {
            report = report.knob(string_from(k), string_from(v));
        }
        report.dataset_seed = dataset_seed;
        report.run_seed = run_seed;
        for (i, (id_raw, seed, queries, samples, stage_raw, extra_raw)) in
            cells.iter().enumerate()
        {
            // Ids must be unique only for human use; the schema allows any.
            let lat = LatencySummary::new(samples.clone());
            let cell = CellReport {
                queries: *queries,
                f1: metric(stage_raw.0 ^ i as i64, stage_raw.1),
                latency: SummaryStats::of(&lat),
                queue_wait: SummaryStats::empty(),
                retrieval: SummaryStats::of(&lat),
                stages: vec![("decode".into(), metric(stage_raw.0, stage_raw.1))],
                throughput_qps: metric(extra_raw.0, extra_raw.1).abs(),
                preemptions: queries / 2,
                gpu_busy_secs: metric(extra_raw.0, stage_raw.1),
                api_cost_usd: metric(stage_raw.0, extra_raw.1),
                retrieval_recall: metric(extra_raw.0, extra_raw.1),
                ..CellReport::new(string_from(id_raw), *seed)
            }
            .metric(string_from(id_raw), metric(extra_raw.0, extra_raw.1));
            report.cells.push(cell);
        }

        let rendered = report.render();
        let parsed = BenchReport::parse(&rendered).expect("rendered reports parse");
        prop_assert_eq!(&parsed, &report);
        // Idempotence: render(parse(render(r))) == render(r).
        prop_assert_eq!(parsed.render(), rendered);
    }

    /// The underlying JSON layer round-trips adversarial strings verbatim.
    #[test]
    fn json_strings_round_trip(raw in prop::collection::vec((0u32..0x11_0000, 0u8..8), 0..40)) {
        let s = string_from(&raw);
        let v = Json::Str(s.clone());
        prop_assert_eq!(Json::parse(&v.render()).expect("parse"), v);
    }

    /// Seeds round-trip exactly over the full u64 range (no f64 rounding).
    #[test]
    fn u64_values_round_trip_exactly(n in any::<u64>()) {
        let v = Json::UInt(n);
        prop_assert_eq!(Json::parse(&v.render()).expect("parse").as_u64(), Some(n));
    }
}

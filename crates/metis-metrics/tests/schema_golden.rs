//! Golden-file schema stability: the rendered form of a fixed report is
//! pinned byte-for-byte in `tests/golden/report_v1.json`. Renaming a
//! field, changing the percentile grid, reordering keys, or touching the
//! pretty-printer all fail this test loudly — which is the point: the CI
//! perf gate diffs these documents against committed baselines, so the
//! schema must never drift silently. On an *intentional* schema change,
//! bump `SCHEMA_VERSION`, regenerate the golden (the failure message says
//! how), and refresh `baselines/`.

use metis_metrics::{BenchReport, CellReport, LatencySummary, SummaryStats};

const GOLDEN: &str = include_str!("golden/report_v1.json");

/// The fixed fixture — do not change without bumping the schema version.
fn fixture() -> BenchReport {
    let mut report = BenchReport::new("golden_fixture", "schema stability fixture")
        .knob("dataset", "musique")
        .knob("load_mults", "1,2");
    report.dataset_seed = 20_241_016;
    report.run_seed = 99;
    let lat = LatencySummary::new(vec![0.5, 1.0, 2.0, 4.0]);
    let ret = LatencySummary::new(vec![0.015625, 0.03125]);
    report.cells.push(
        CellReport {
            queries: 4,
            f1: 0.75,
            latency: SummaryStats::of(&lat),
            queue_wait: SummaryStats::of(&LatencySummary::new(vec![0.25])),
            retrieval: SummaryStats::of(&ret),
            stages: vec![
                ("profile".into(), 0.125),
                ("decide".into(), 0.0),
                ("retrieve".into(), 0.03125),
                ("queue_wait".into(), 0.25),
                ("prefill".into(), 0.5),
                ("decode".into(), 1.0),
            ],
            throughput_qps: 2.0,
            preemptions: 1,
            gpu_busy_secs: 3.5,
            api_cost_usd: 0.0625,
            retrieval_recall: 0.875,
            ..CellReport::new("musique/metis/1.00x", 7)
        }
        .knob("system", "metis")
        .metric("chunk_recall_at_8", 0.9375),
    );
    report
}

#[test]
fn rendered_schema_matches_the_committed_golden() {
    let rendered = fixture().render();
    if std::env::var("METIS_REGEN_GOLDEN").is_ok() {
        // Intentional schema change: rewrite the golden in place (run with
        // METIS_REGEN_GOLDEN=1), then review the diff and bump
        // SCHEMA_VERSION if fields changed shape.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report_v1.json");
        std::fs::write(path, &rendered).expect("write golden");
        return;
    }
    assert_eq!(
        rendered, GOLDEN,
        "schema drift: the rendered report no longer matches \
         tests/golden/report_v1.json. If the change is intentional, rerun \
         this test with METIS_REGEN_GOLDEN=1, review the diff, bump \
         SCHEMA_VERSION on shape changes, and regenerate baselines/ (see \
         README)."
    );
}

#[test]
fn committed_golden_still_parses_to_the_fixture() {
    let parsed = BenchReport::parse(GOLDEN).expect("golden parses");
    assert_eq!(parsed, fixture(), "golden no longer decodes losslessly");
}

//! LLM inference simulator for the METIS reproduction.
//!
//! This crate replaces the paper's GPU testbed (AWQ-quantized Mistral-7B-v3 /
//! Llama-3.1-70B served by vLLM on NVIDIA A40s) with an analytical model that
//! preserves the three quantities METIS's decisions depend on:
//!
//! 1. **Memory** — KV-cache bytes per token, model weight footprint, and the
//!    per-request KV requirement the joint scheduler best-fits against (§4.3).
//! 2. **Latency** — FLOPs-bound prefill and bandwidth-bound decode as
//!    functions of token counts and batch composition, so queueing and
//!    batching dynamics reproduce the serving behaviour of the testbed.
//! 3. **Quality** — a *fact-extraction generation model*: an LLM call over a
//!    context extracts the facts planted in it with probabilities shaped by
//!    lost-in-the-middle position decay and context dilution, performs joint
//!    reasoning to derive cross-chunk conclusions, and emits a real token
//!    sequence that is scored with token-level F1 downstream.
//!
//! All randomness is drawn from per-call seeds, making every simulated
//! inference reproducible.

pub mod clock;
pub mod generation;
pub mod hardware;
pub mod latency;
pub mod spec;
pub mod time;

pub use clock::{Clock, VirtualClock, WallClock};
pub use generation::{
    BaseFact, DerivedFact, GenMode, GenModelConfig, GenOutput, GenerationModel, QueryTruth,
    SummaryOutput,
};
pub use hardware::{FleetSpec, GpuCluster, GpuSpec, ReplicaSpec};
pub use latency::LatencyModel;
pub use spec::{ModelKind, ModelSpec, Quantization};
pub use time::{nanos_to_secs, secs_to_nanos, Nanos};

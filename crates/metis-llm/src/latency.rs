//! Analytical serving-latency model.
//!
//! Standard roofline treatment of transformer serving, the same model used
//! by vLLM capacity planning:
//!
//! * **Prefill** is compute-bound: `2 × params` FLOPs per token of linear
//!   work plus a quadratic attention term, divided by effective cluster
//!   FLOP/s (with the AWQ kernel speedup applied to the linear part).
//! * **Decode** is bandwidth-bound: every iteration streams the weights once
//!   (amortized over the whole batch — the essence of continuous batching)
//!   plus each running sequence's KV cache.
//! * A **mixed iteration** (chunked prefill) pays the max of its compute and
//!   memory times plus a fixed per-iteration overhead (kernel launch,
//!   scheduler bookkeeping).
//! * **API calls** (profiler models) pay a network constant plus per-token
//!   input and output costs; they consume no local GPU resources.

use crate::hardware::GpuCluster;
use crate::spec::{ModelKind, ModelSpec};
use crate::time::{secs_to_nanos, Nanos};

/// Latency model for one model replica on one cluster.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    model: ModelSpec,
    cluster: GpuCluster,
    /// Fixed per-iteration overhead in seconds.
    iter_overhead_s: f64,
    /// API round-trip constant in seconds (API models).
    api_rtt_s: f64,
    /// API input processing seconds per token.
    api_in_s_per_tok: f64,
    /// API output generation seconds per token.
    api_out_s_per_tok: f64,
}

impl LatencyModel {
    /// Builds the model; panics if a local model cannot fit on the cluster.
    ///
    /// # Panics
    ///
    /// Panics if `model` is a local model whose weights leave no KV-cache
    /// room on `cluster` — serving would be impossible, so this is a
    /// configuration error.
    pub fn new(model: ModelSpec, cluster: GpuCluster) -> Self {
        if model.kind == ModelKind::Local {
            assert!(
                cluster.kv_pool_bytes(&model) > 0,
                "model {} does not fit on the given cluster",
                model.name
            );
        }
        Self {
            model,
            cluster,
            iter_overhead_s: 0.0025,
            api_rtt_s: 0.10,
            api_in_s_per_tok: 2.0e-6,
            api_out_s_per_tok: 0.005,
        }
    }

    /// The model this latency model describes.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The cluster this latency model runs on.
    pub fn cluster(&self) -> &GpuCluster {
        &self.cluster
    }

    /// Compute seconds to prefill `new_tokens` whose attention spans
    /// `ctx_tokens` total context (for one sequence, `ctx >= new`).
    fn prefill_compute_s(&self, new_tokens: u64, ctx_tokens: u64) -> f64 {
        let linear =
            self.model.flops_per_token() * new_tokens as f64 / self.model.quant.compute_speedup();
        // Attention: ~4 × layers × hidden FLOPs per (new token, ctx token) pair.
        let attn = 4.0
            * f64::from(self.model.layers)
            * f64::from(self.model.hidden)
            * new_tokens as f64
            * ctx_tokens as f64
            / 2.0; // Causal mask halves the pair count.
        (linear + attn) / self.cluster.effective_flops()
    }

    /// Memory seconds for one iteration: weights streamed once plus the KV
    /// cache of all running sequences.
    fn iter_memory_s(&self, batch_kv_tokens: u64) -> f64 {
        let weight_read = self.model.weight_bytes() as f64;
        let kv_read = (batch_kv_tokens * self.model.kv_bytes_per_token()) as f64;
        (weight_read + kv_read) / self.cluster.effective_bw()
    }

    /// Duration of one engine iteration that prefills `prefill_tokens` new
    /// tokens (attention span `prefill_ctx_tokens`), decodes `decode_seqs`
    /// sequences, over a batch holding `batch_kv_tokens` cached tokens.
    pub fn iteration_time(
        &self,
        prefill_tokens: u64,
        prefill_ctx_tokens: u64,
        decode_seqs: u64,
        batch_kv_tokens: u64,
    ) -> Nanos {
        let compute = self
            .prefill_compute_s(prefill_tokens, prefill_ctx_tokens.max(prefill_tokens))
            + self.model.flops_per_token() * decode_seqs as f64
                / self.model.quant.compute_speedup()
                / self.cluster.effective_flops();
        let memory = self.iter_memory_s(batch_kv_tokens);
        secs_to_nanos(compute.max(memory) + self.iter_overhead_s)
    }

    /// Stand-alone prefill estimate for a sequence of `tokens` tokens —
    /// used by schedulers for cost estimates, not for the simulation clock.
    pub fn prefill_estimate(&self, tokens: u64) -> Nanos {
        secs_to_nanos(self.prefill_compute_s(tokens, tokens) + self.iter_overhead_s)
    }

    /// Stand-alone decode estimate for `output_tokens` at batch occupancy
    /// `batch_kv_tokens`.
    pub fn decode_estimate(&self, output_tokens: u64, batch_kv_tokens: u64) -> Nanos {
        let per_step = self.iter_memory_s(batch_kv_tokens) + self.iter_overhead_s;
        secs_to_nanos(per_step * output_tokens as f64)
    }

    /// Latency of an API call (profiler models): RTT + input + output cost.
    pub fn api_call(&self, input_tokens: u64, output_tokens: u64) -> Nanos {
        secs_to_nanos(
            self.api_rtt_s
                + self.api_in_s_per_tok * input_tokens as f64
                + self.api_out_s_per_tok * output_tokens as f64,
        )
    }

    /// Dollar cost of an API call under the model's pricing.
    pub fn api_cost_usd(&self, input_tokens: u64, output_tokens: u64) -> f64 {
        (input_tokens as f64 * self.model.usd_per_mtok_in
            + output_tokens as f64 * self.model.usd_per_mtok_out)
            / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::GpuCluster;
    use crate::spec::ModelSpec;
    use crate::time::nanos_to_secs;

    fn mistral() -> LatencyModel {
        LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40())
    }

    #[test]
    fn prefill_scales_superlinearly_in_tokens() {
        let m = mistral();
        let t1 = m.prefill_estimate(1_000);
        let t8 = m.prefill_estimate(8_000);
        let ratio = t8 as f64 / t1 as f64;
        assert!(ratio > 7.0, "prefill should scale ~linearly+, got {ratio}");
    }

    #[test]
    fn prefill_of_5k_tokens_is_seconds_scale() {
        // Sanity: Mistral-7B on one A40 prefills ~5k tokens in O(1 s).
        let m = mistral();
        let secs = nanos_to_secs(m.prefill_estimate(5_000));
        assert!(secs > 0.2 && secs < 5.0, "prefill(5k) = {secs}s");
    }

    #[test]
    fn decode_is_bandwidth_bound_and_batch_amortized() {
        let m = mistral();
        // 20 output tokens alone vs in a large batch: per-sequence share of
        // a batched iteration is the same iteration time, so the *estimate*
        // for a fuller batch is larger in absolute time.
        let alone = m.decode_estimate(20, 1_000);
        let batched = m.decode_estimate(20, 100_000);
        assert!(batched > alone);
        // Single-step decode should be milliseconds.
        let step = nanos_to_secs(m.decode_estimate(1, 1_000));
        assert!(step > 0.001 && step < 0.05, "decode step = {step}s");
    }

    #[test]
    fn iteration_time_monotone_in_all_inputs() {
        let m = mistral();
        let base = m.iteration_time(512, 512, 4, 10_000);
        assert!(m.iteration_time(1024, 1024, 4, 10_000) >= base);
        assert!(m.iteration_time(512, 512, 8, 10_000) >= base);
        assert!(m.iteration_time(512, 512, 4, 200_000) >= base);
        assert!(m.iteration_time(512, 2048, 4, 10_000) >= base);
    }

    #[test]
    fn seventy_b_is_slower_than_7b_on_its_cluster() {
        let small = mistral();
        let big = LatencyModel::new(ModelSpec::llama31_70b_awq(), GpuCluster::dual_a40());
        assert!(big.prefill_estimate(4_000) > small.prefill_estimate(4_000) * 3);
    }

    #[test]
    fn api_call_latency_dominated_by_output() {
        let g = LatencyModel::new(ModelSpec::gpt4o(), GpuCluster::single_a40());
        let short_out = g.api_call(500, 10);
        let long_out = g.api_call(500, 100);
        assert!(long_out > short_out * 2);
        // A profiler call (short in, ~20 tokens out) lands well under a second.
        assert!(nanos_to_secs(g.api_call(200, 20)) < 0.6);
    }

    #[test]
    fn api_cost_matches_price_table() {
        let g = LatencyModel::new(ModelSpec::gpt4o(), GpuCluster::single_a40());
        let cost = g.api_cost_usd(1_000_000, 1_000_000);
        assert!((cost - 12.50).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_panics() {
        let mut fp16 = ModelSpec::llama31_70b_awq();
        fp16.quant = crate::spec::Quantization::Fp16;
        let _ = LatencyModel::new(fp16, GpuCluster::single_a40());
    }
}

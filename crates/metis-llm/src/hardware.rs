//! GPU hardware model.
//!
//! The paper benchmarks on a server with two NVIDIA A40 GPUs (48 GB each):
//! one GPU serves Mistral-7B, both serve Llama-3.1-70B with tensor
//! parallelism. The cluster model aggregates compute and bandwidth across
//! GPUs and splits the weight footprint, the standard TP approximation.

use crate::latency::LatencyModel;
use crate::spec::ModelSpec;
use crate::time::Nanos;

/// One GPU's capabilities.
#[derive(Clone, Copy, Debug)]
pub struct GpuSpec {
    /// Device memory in bytes.
    pub mem_bytes: u64,
    /// Dense fp16 tensor throughput in FLOP/s.
    pub flops: f64,
    /// Memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Achievable fraction of peak FLOPs in serving (MFU).
    pub mfu: f64,
    /// Achievable fraction of peak bandwidth.
    pub mbu: f64,
}

impl GpuSpec {
    /// NVIDIA A40: 48 GB, ~74.8 TFLOPS dense fp16 tensor, 696 GB/s.
    pub fn a40() -> Self {
        Self {
            mem_bytes: 48 * (1 << 30),
            flops: 74.8e12,
            mem_bw: 696e9,
            mfu: 0.65,
            mbu: 0.85,
        }
    }

    /// NVIDIA H100 SXM: 80 GB HBM3, ~989 TFLOPS dense fp16 tensor,
    /// 3.35 TB/s. The high-end class for heterogeneous fleets: roughly
    /// 13× the A40's compute and 5× its bandwidth per device.
    pub fn h100() -> Self {
        Self {
            mem_bytes: 80 * (1 << 30),
            flops: 989e12,
            mem_bw: 3.35e12,
            mfu: 0.65,
            mbu: 0.85,
        }
    }
}

/// A tensor-parallel group of identical GPUs serving one model replica.
#[derive(Clone, Copy, Debug)]
pub struct GpuCluster {
    /// The per-device spec.
    pub gpu: GpuSpec,
    /// Number of devices in the TP group.
    pub count: u32,
    /// Fraction of device memory vLLM may use (`gpu_memory_utilization`).
    pub mem_utilization: f64,
    /// Bytes reserved per device for activations, CUDA graphs, and NCCL
    /// buffers (not available for weights or KV cache).
    pub reserved_bytes: u64,
}

impl GpuCluster {
    /// Single A40 (the paper's Mistral-7B setup).
    pub fn single_a40() -> Self {
        Self {
            gpu: GpuSpec::a40(),
            count: 1,
            mem_utilization: 0.90,
            reserved_bytes: 3 * (1 << 30),
        }
    }

    /// Two A40s with tensor parallelism (the paper's Llama-70B setup).
    pub fn dual_a40() -> Self {
        Self {
            count: 2,
            ..Self::single_a40()
        }
    }

    /// Single H100 (the high-end replica class in mixed fleets).
    pub fn single_h100() -> Self {
        Self {
            gpu: GpuSpec::h100(),
            count: 1,
            mem_utilization: 0.90,
            reserved_bytes: 3 * (1 << 30),
        }
    }

    /// Aggregate effective FLOP/s across the TP group.
    pub fn effective_flops(&self) -> f64 {
        self.gpu.flops * self.gpu.mfu * f64::from(self.count)
    }

    /// Aggregate effective memory bandwidth across the TP group.
    pub fn effective_bw(&self) -> f64 {
        self.gpu.mem_bw * self.gpu.mbu * f64::from(self.count)
    }

    /// Total usable memory across devices after the utilization cap.
    pub fn usable_mem(&self) -> u64 {
        (self.gpu.mem_bytes as f64 * self.mem_utilization) as u64 * u64::from(self.count)
    }

    /// Bytes available for the KV cache once `model` is resident.
    ///
    /// Returns 0 (rather than panicking) if the model does not fit; callers
    /// treat that as a configuration error at engine construction.
    pub fn kv_pool_bytes(&self, model: &ModelSpec) -> u64 {
        let reserved = self.reserved_bytes * u64::from(self.count);
        self.usable_mem()
            .saturating_sub(model.weight_bytes())
            .saturating_sub(reserved)
    }

    /// Maximum number of KV-cache tokens the pool can hold for `model`.
    pub fn kv_pool_tokens(&self, model: &ModelSpec) -> u64 {
        self.kv_pool_bytes(model) / model.kv_bytes_per_token()
    }
}

/// One replica's hardware and lifecycle parameters.
///
/// A fleet is a list of these: each replica is an independent tensor-
/// parallel GPU group (possibly of a different class than its neighbors)
/// plus the warm-up cost an autoscaler pays before the replica admits
/// work — weight loading, CUDA-graph capture, cache allocation.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaSpec {
    /// The replica's GPU group.
    pub cluster: GpuCluster,
    /// Virtual nanoseconds between spawning this replica and it accepting
    /// routed work (0 = instantly ready, the static-fleet behavior).
    pub warmup_nanos: Nanos,
}

impl ReplicaSpec {
    /// A replica on `cluster` with no warm-up cost.
    pub fn new(cluster: GpuCluster) -> Self {
        Self {
            cluster,
            warmup_nanos: 0,
        }
    }

    /// The same replica with a warm-up cost before it admits work.
    pub fn with_warmup(self, warmup_nanos: Nanos) -> Self {
        Self {
            warmup_nanos,
            ..self
        }
    }
}

/// A multi-replica serving fleet: independent tensor-parallel groups, each
/// serving its own copy of `model`. Replicas share nothing — no weights,
/// no KV — which is the deployment shape the engine's `Cluster` router
/// dispatches over. The per-replica [`ReplicaSpec`]s may mix GPU classes
/// (e.g. A40-like and H100-like latency/KV-capacity models).
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// The model every replica serves.
    pub model: ModelSpec,
    /// The per-replica specs, in replica order (at least 1).
    pub replicas: Vec<ReplicaSpec>,
}

impl FleetSpec {
    /// Builds a homogeneous fleet of `replicas` copies of `model` on
    /// `cluster`-shaped GPU groups with no warm-up cost.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(model: ModelSpec, cluster: GpuCluster, replicas: usize) -> Self {
        Self::heterogeneous(model, vec![ReplicaSpec::new(cluster); replicas])
    }

    /// Builds a fleet from explicit per-replica specs (mixed GPU classes,
    /// per-replica warm-up costs).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn heterogeneous(model: ModelSpec, replicas: Vec<ReplicaSpec>) -> Self {
        assert!(!replicas.is_empty(), "a fleet needs at least one replica");
        Self { model, replicas }
    }

    /// The single-replica fleet (the paper's testbed shape).
    pub fn single(model: ModelSpec, cluster: GpuCluster) -> Self {
        Self::new(model, cluster, 1)
    }

    /// Number of replicas in the fleet.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// One latency model per replica, in replica order.
    pub fn latency_models(&self) -> Vec<LatencyModel> {
        self.replicas
            .iter()
            .map(|r| LatencyModel::new(self.model.clone(), r.cluster))
            .collect()
    }

    /// Total GPU count across all replicas.
    pub fn total_gpus(&self) -> u32 {
        self.replicas.iter().map(|r| r.cluster.count).sum()
    }

    /// Aggregate KV-pool bytes across all replicas (each replica holds its
    /// own weights, so the pool does not grow superlinearly).
    pub fn total_kv_pool_bytes(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.cluster.kv_pool_bytes(&self.model))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a40_capacity_matches_datasheet() {
        let g = GpuSpec::a40();
        assert_eq!(g.mem_bytes, 51_539_607_552);
        assert!(g.flops > 70e12 && g.flops < 80e12);
    }

    #[test]
    fn mistral_kv_pool_is_tens_of_gb() {
        let cluster = GpuCluster::single_a40();
        let model = ModelSpec::mistral_7b_awq();
        let pool = cluster.kv_pool_bytes(&model);
        // ~43.2 usable − ~3.8 weights − 3 reserved ≈ 36 GB.
        assert!(
            pool > 30 * (1 << 30) && pool < 40 * (1u64 << 30),
            "pool = {pool}"
        );
        // At 128 KiB/token that is a few hundred thousand tokens.
        let tokens = cluster.kv_pool_tokens(&model);
        assert!(tokens > 200_000 && tokens < 330_000, "tokens = {tokens}");
    }

    #[test]
    fn llama70b_needs_two_gpus() {
        let model = ModelSpec::llama31_70b_awq();
        // On one A40 the AWQ weights barely fit, leaving a KV pool too small
        // to serve long-context RAG; fp16 weights do not fit at all.
        assert!(GpuCluster::single_a40().kv_pool_bytes(&model) < 8 * (1u64 << 30));
        let mut fp16 = model.clone();
        fp16.quant = crate::spec::Quantization::Fp16;
        assert_eq!(GpuCluster::single_a40().kv_pool_bytes(&fp16), 0);
        assert!(GpuCluster::dual_a40().kv_pool_bytes(&model) > 10 * (1u64 << 30));
    }

    #[test]
    fn dual_cluster_doubles_compute() {
        let one = GpuCluster::single_a40();
        let two = GpuCluster::dual_a40();
        assert!((two.effective_flops() / one.effective_flops() - 2.0).abs() < 1e-9);
        assert!((two.effective_bw() / one.effective_bw() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_aggregates_replicas() {
        let fleet = FleetSpec::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40(), 4);
        assert_eq!(fleet.total_gpus(), 4);
        assert_eq!(fleet.latency_models().len(), 4);
        let one = FleetSpec::single(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        assert_eq!(fleet.total_kv_pool_bytes(), one.total_kv_pool_bytes() * 4);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replica_fleet_is_rejected() {
        let _ = FleetSpec::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40(), 0);
    }

    #[test]
    fn h100_outclasses_a40() {
        let (a, h) = (GpuCluster::single_a40(), GpuCluster::single_h100());
        assert!(h.effective_flops() > 10.0 * a.effective_flops());
        assert!(h.effective_bw() > 4.0 * a.effective_bw());
        let model = ModelSpec::mistral_7b_awq();
        // The 80 GB device also holds a far larger KV pool.
        assert!(h.kv_pool_tokens(&model) > 15 * a.kv_pool_tokens(&model) / 10);
    }

    #[test]
    fn heterogeneous_fleet_mixes_classes_per_replica() {
        let model = ModelSpec::mistral_7b_awq();
        let fleet = FleetSpec::heterogeneous(
            model.clone(),
            vec![
                ReplicaSpec::new(GpuCluster::single_a40()),
                ReplicaSpec::new(GpuCluster::single_h100()).with_warmup(5_000_000_000),
            ],
        );
        assert_eq!(fleet.replica_count(), 2);
        assert_eq!(fleet.total_gpus(), 2);
        assert_eq!(fleet.replicas[0].warmup_nanos, 0);
        assert_eq!(fleet.replicas[1].warmup_nanos, 5_000_000_000);
        // Each replica's latency model reflects its own GPU class.
        let models = fleet.latency_models();
        assert_eq!(models.len(), 2);
        let a40_pool = GpuCluster::single_a40().kv_pool_bytes(&model);
        let h100_pool = GpuCluster::single_h100().kv_pool_bytes(&model);
        assert_eq!(fleet.total_kv_pool_bytes(), a40_pool + h100_pool);
        assert!(h100_pool > a40_pool);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_heterogeneous_fleet_is_rejected() {
        let _ = FleetSpec::heterogeneous(ModelSpec::mistral_7b_awq(), Vec::new());
    }
}

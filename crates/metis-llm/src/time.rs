//! Virtual-time units.
//!
//! The whole reproduction reasons in virtual time; how virtual time passes
//! (deterministic jumps or scaled wall-clock, see [`crate::clock`]) is the
//! driver's choice. Durations and instants are 64-bit nanosecond counts,
//! which keeps event ordering exact (no float comparison issues) and gives
//! ~584 years of simulated range.

/// A duration or instant in virtual nanoseconds.
pub type Nanos = u64;

/// Converts (non-negative, finite) seconds to [`Nanos`], saturating.
///
/// # Panics
///
/// Panics if `secs` is negative or not finite — a latency model emitting
/// such a value is a bug worth failing loudly on.
#[inline]
pub fn secs_to_nanos(secs: f64) -> Nanos {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "invalid duration: {secs} s"
    );
    (secs * 1e9).min(u64::MAX as f64) as Nanos
}

/// Converts [`Nanos`] to seconds.
#[inline]
pub fn nanos_to_secs(n: Nanos) -> f64 {
    n as f64 / 1e9
}

/// Converts (non-negative) milliseconds to [`Nanos`].
#[inline]
pub fn millis_to_nanos(ms: f64) -> Nanos {
    secs_to_nanos(ms / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_close() {
        let n = secs_to_nanos(1.5);
        assert_eq!(n, 1_500_000_000);
        assert!((nanos_to_secs(n) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn millis_scale() {
        assert_eq!(millis_to_nanos(2.0), 2_000_000);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = secs_to_nanos(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn nan_duration_panics() {
        let _ = secs_to_nanos(f64::NAN);
    }
}

//! Fact-extraction generation model.
//!
//! The paper's quality results (Figures 4, 5, 10, 13–17) are driven by three
//! mechanisms, all of which this module implements explicitly:
//!
//! 1. **Evidence coverage** — an answer can only contain facts whose
//!    evidence is present in the LLM call's context (retrieval recall vs
//!    `num_chunks`).
//! 2. **Lost-in-the-middle** (§2, §3, [Liu et al. 2024]) — the probability
//!    of extracting a fact decays for facts buried in the middle of long
//!    contexts, so piling on chunks eventually *hurts* quality.
//! 3. **Joint reasoning** — some conclusions (comparisons, aggregations,
//!    multi-hop hops) are *derived facts* that the model can only produce
//!    when all component facts are visible in the *same* call; this is why
//!    `map_rerank` fails on cross-chunk queries while `stuff`/`map_reduce`
//!    succeed (Fig. 4a).
//!
//! A call emits a real token sequence (gold phrases for the facts it
//! extracted or derived, plus boilerplate tokens), which `metis-metrics`
//! scores with standard SQuAD-style token F1 — quality is *measured*, not
//! postulated.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metis_text::{AnnotatedText, FactId, TokenId};

use crate::spec::ModelSpec;

/// A fact the query directly needs, with its gold answer contribution.
#[derive(Clone, Debug)]
pub struct BaseFact {
    /// The planted fact's id.
    pub id: FactId,
    /// Gold tokens this fact contributes to the final answer.
    pub answer: Vec<TokenId>,
    /// Whether the fact's tokens appear in the final answer (intermediate
    /// hops of multi-hop questions are needed but not part of the answer).
    pub in_answer: bool,
}

/// A conclusion derivable only by joint reasoning over component facts.
#[derive(Clone, Debug)]
pub struct DerivedFact {
    /// Synthetic id of the derived conclusion (never planted in the corpus).
    pub id: FactId,
    /// Facts that must be co-visible in one call to derive this.
    pub components: Vec<FactId>,
    /// Gold tokens the derivation contributes to the answer.
    pub answer: Vec<TokenId>,
}

/// Ground truth for one query: what evidence it needs and what the gold
/// answer is. Produced by the dataset generators, consumed by this model
/// and by the F1 scorer.
#[derive(Clone, Debug, Default)]
pub struct QueryTruth {
    /// Directly needed facts.
    pub base: Vec<BaseFact>,
    /// Joint-reasoning conclusions.
    pub derived: Vec<DerivedFact>,
}

impl QueryTruth {
    /// Ids of all base facts.
    pub fn needed_ids(&self) -> BTreeSet<FactId> {
        self.base.iter().map(|f| f.id).collect()
    }

    /// Number of distinct pieces of information required (§4.1's
    /// "pieces of information" profile dimension).
    pub fn pieces(&self) -> usize {
        self.base.len()
    }

    /// Whether answering requires joint reasoning across facts.
    pub fn requires_joint(&self) -> bool {
        !self.derived.is_empty()
    }

    /// The gold answer token bag.
    pub fn gold_answer(&self) -> Vec<TokenId> {
        let mut out = Vec::new();
        for f in &self.base {
            if f.in_answer {
                out.extend_from_slice(&f.answer);
            }
        }
        for d in &self.derived {
            out.extend_from_slice(&d.answer);
        }
        out
    }
}

/// Tunable parameters of the generation model.
#[derive(Clone, Copy, Debug)]
pub struct GenModelConfig {
    /// Context length (tokens) at which lost-in-the-middle decay begins.
    pub litm_onset: f64,
    /// Decay depth gained per natural-log unit of context beyond the onset.
    pub litm_slope: f64,
    /// Maximum decay depth (cap on the mid-context dip).
    pub litm_max: f64,
    /// Dilution: extraction decays as `1/(1 + γ·ln(total/relevant))` where
    /// `relevant` is the needed evidence plus an attention halo around it.
    /// Models distractor confusion from over-retrieval (§3's "blindly
    /// retrieving more chunks than necessary risks diluting the relevance of
    /// actual important information"). Self-normalizing: a context sized to
    /// the evidence suffers no dilution regardless of absolute length.
    pub dilution_gamma: f64,
    /// Attention-halo tokens counted as relevant around each needed fact.
    pub dilution_halo: f64,
    /// Grace ratio: dilution only begins once total/relevant exceeds this
    /// (the paper's `[n, 3n]` retrieval range is the safe zone — a typical
    /// retriever over-fetches 2–3× on purpose, §4.2 footnote).
    pub dilution_grace: f64,
    /// Boilerplate tokens emitted per gold answer token (sets the F1 scale:
    /// more boilerplate, lower precision — real model outputs contain
    /// hedging and formatting that gold answers do not).
    pub fill_ratio: f64,
    /// Minimum boilerplate tokens per answer.
    pub fill_min: usize,
    /// Capability multiplier for summarization (map) calls, which are easier
    /// than question answering.
    pub summary_capability_boost: f64,
}

impl Default for GenModelConfig {
    fn default() -> Self {
        Self {
            litm_onset: 600.0,
            litm_slope: 0.10,
            litm_max: 0.50,
            dilution_gamma: 0.55,
            dilution_halo: 900.0,
            dilution_grace: 3.0,
            fill_ratio: 0.9,
            fill_min: 2,
            summary_capability_boost: 1.05,
        }
    }
}

/// What a generation call is asked to do.
#[derive(Clone, Copy, Debug)]
pub enum GenMode {
    /// Produce a final answer to the query.
    Answer,
    /// Produce a query-focused summary within a token budget
    /// (`intermediate_length`, the paper's third knob).
    Summarize {
        /// Maximum tokens in the produced summary.
        budget: usize,
    },
}

/// Result of an answer-mode call.
#[derive(Clone, Debug)]
pub struct GenOutput {
    /// Emitted answer tokens (gold phrases + boilerplate).
    pub tokens: Vec<TokenId>,
    /// Facts (base and derived) the call managed to produce.
    pub extracted: BTreeSet<FactId>,
    /// Fraction of the query's needed facts this call produced, weighting
    /// derived facts equally with base facts.
    pub coverage: f64,
    /// Model self-confidence in `[0, 1]` (log-prob proxy), used by
    /// `map_rerank` to pick the best single-chunk answer.
    pub confidence: f64,
}

/// Result of a summarize-mode call.
#[derive(Clone, Debug)]
pub struct SummaryOutput {
    /// The summary text: preserved fact spans plus carried-over chunk words.
    pub text: AnnotatedText,
    /// Facts whose evidence survived into the summary.
    pub kept: BTreeSet<FactId>,
}

/// The fact-extraction generation model for one serving model.
#[derive(Clone, Debug)]
pub struct GenerationModel {
    capability: f64,
    reasoning: f64,
    config: GenModelConfig,
}

impl GenerationModel {
    /// Builds the generation model from a model spec.
    pub fn new(spec: &ModelSpec, config: GenModelConfig) -> Self {
        Self {
            capability: spec.capability,
            reasoning: spec.reasoning,
            config,
        }
    }

    /// Builds with default tuning.
    pub fn from_spec(spec: &ModelSpec) -> Self {
        Self::new(spec, GenModelConfig::default())
    }

    /// The model's tuning parameters.
    pub fn config(&self) -> &GenModelConfig {
        &self.config
    }

    /// Lost-in-the-middle weight for a fact centred at `pos` of a `len`-token
    /// context: 1.0 at the edges, dipping in the middle, with the dip depth
    /// growing logarithmically with context length.
    pub fn litm_weight(&self, pos: usize, len: usize) -> f64 {
        if len == 0 || (len as f64) <= self.config.litm_onset {
            return 1.0;
        }
        let depth = (self.config.litm_slope * (len as f64 / self.config.litm_onset).ln())
            .min(self.config.litm_max);
        let r = pos as f64 / len as f64;
        1.0 - depth * (4.0 * r * (1.0 - r))
    }

    /// Dilution factor for a `len`-token context of which `relevant` tokens
    /// (evidence + halo) matter to the query.
    pub fn dilution(&self, len: usize, relevant: f64) -> f64 {
        let relevant = relevant.max(1.0).min(len as f64);
        let ratio = len as f64 / relevant / self.config.dilution_grace.max(1.0);
        if ratio <= 1.0 {
            return 1.0;
        }
        1.0 / (1.0 + self.config.dilution_gamma * ratio.ln())
    }

    /// Runs an answer-mode call: extract needed facts from `context`, derive
    /// joint conclusions, and emit an answer token sequence.
    ///
    /// `boilerplate` supplies the token pool for non-answer output words
    /// (provided by the dataset so it never collides with gold tokens).
    /// `segments` is the number of concatenated retrieval units in the
    /// context (chunks for `stuff`, summaries for the reduce call, 1 for a
    /// single-chunk call); the attention halo around each needed fact cannot
    /// exceed one segment, which is what makes over-retrieval dilute *any*
    /// synthesis method.
    pub fn answer(
        &self,
        seed: u64,
        truth: &QueryTruth,
        context: &AnnotatedText,
        boilerplate: &[TokenId],
        segments: usize,
    ) -> GenOutput {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA05_3E1);
        let needed = truth.needed_ids();
        let component_ids: BTreeSet<FactId> = truth
            .derived
            .iter()
            .flat_map(|d| d.components.iter().copied())
            .collect();
        let len = context.len();

        // Relevant mass: each distinct needed fact present contributes its
        // span plus an attention halo, capped at one retrieval segment.
        let halo = self
            .config
            .dilution_halo
            .min(len as f64 / segments.max(1) as f64);
        let mut seen_relevant: BTreeSet<FactId> = BTreeSet::new();
        let mut relevant_tokens = 0.0f64;
        for span in context.spans() {
            let is_needed = needed.contains(&span.fact) || component_ids.contains(&span.fact);
            if is_needed && seen_relevant.insert(span.fact) {
                relevant_tokens += span.len as f64 + halo;
            }
        }
        let dilution = self.dilution(len, relevant_tokens);

        // Extraction pass over every relevant span in the context.
        let mut extracted: BTreeSet<FactId> = BTreeSet::new();
        for span in context.spans() {
            let relevant = needed.contains(&span.fact) || component_ids.contains(&span.fact);
            if !relevant || extracted.contains(&span.fact) {
                continue;
            }
            let centre = span.start + span.len / 2;
            let p = self.capability * self.litm_weight(centre, len) * dilution;
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                extracted.insert(span.fact);
            }
        }

        // Joint-reasoning pass: derive conclusions whose components are all
        // visible in this same call.
        for d in &truth.derived {
            let have_all = d.components.iter().all(|c| extracted.contains(c));
            if have_all && rng.gen_bool(self.reasoning.clamp(0.0, 1.0)) {
                extracted.insert(d.id);
            }
        }

        // Emit the answer: gold phrases for produced facts + boilerplate.
        let mut tokens = Vec::new();
        for f in &truth.base {
            if f.in_answer && extracted.contains(&f.id) {
                tokens.extend_from_slice(&f.answer);
            }
        }
        for d in &truth.derived {
            if extracted.contains(&d.id) {
                tokens.extend_from_slice(&d.answer);
            }
        }
        let fill = self.config.fill_min + (tokens.len() as f64 * self.config.fill_ratio) as usize;
        if !boilerplate.is_empty() {
            for _ in 0..fill {
                tokens.push(boilerplate[rng.gen_range(0..boilerplate.len())]);
            }
        }

        // Coverage and confidence.
        let total = (truth.base.len() + truth.derived.len()).max(1) as f64;
        let produced = extracted
            .iter()
            .filter(|f| {
                truth.base.iter().any(|b| b.id == **f) || truth.derived.iter().any(|d| d.id == **f)
            })
            .count() as f64;
        let coverage = produced / total;
        // Log-prob-style confidence: high when the answer is grounded, with
        // small model noise.
        let noise: f64 = rng.gen_range(-0.05..0.05);
        let confidence = (0.15 + 0.8 * coverage + noise).clamp(0.0, 1.0);

        GenOutput {
            tokens,
            extracted,
            coverage,
            confidence,
        }
    }

    /// Runs a summarize-mode (map) call over one chunk: keep the
    /// query-relevant fact spans that fit in `budget` tokens, pad with words
    /// carried over from the chunk.
    pub fn summarize(
        &self,
        seed: u64,
        truth: &QueryTruth,
        chunk: &AnnotatedText,
        budget: usize,
    ) -> SummaryOutput {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x500A1);
        let needed = truth.needed_ids();
        let component_ids: BTreeSet<FactId> = truth
            .derived
            .iter()
            .flat_map(|d| d.components.iter().copied())
            .collect();
        let len = chunk.len();
        let cap = (self.capability * self.config.summary_capability_boost).min(1.0);

        let mut text = AnnotatedText::new();
        let mut kept = BTreeSet::new();
        // Per-fact overhead: a couple of framing words around each kept span.
        const SPAN_OVERHEAD: usize = 2;
        for span in chunk.spans() {
            let relevant = needed.contains(&span.fact) || component_ids.contains(&span.fact);
            if !relevant || kept.contains(&span.fact) {
                continue;
            }
            if text.len() + span.len + SPAN_OVERHEAD > budget {
                continue; // Budget exhausted: the fact is lost (Fig. 4c).
            }
            let centre = span.start + span.len / 2;
            let p = cap * self.litm_weight(centre, len);
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                if let Some(toks) = chunk.fact_tokens(span.fact) {
                    let toks = toks.to_vec();
                    // Framing words drawn from the chunk's plain tokens.
                    if let Some(&w) = chunk.tokens().first() {
                        text.push_tokens(&[w]);
                    }
                    text.push_fact(span.fact, &toks);
                    if let Some(&w) = chunk.tokens().last() {
                        text.push_tokens(&[w]);
                    }
                    kept.insert(span.fact);
                }
            }
        }
        // Pad with carried-over chunk words up to the budget (a summary also
        // restates context), but never beyond it.
        let pad_target = budget.min(text.len() + budget / 4);
        let plain = chunk.tokens();
        while text.len() < pad_target && !plain.is_empty() {
            text.push_tokens(&[plain[rng.gen_range(0..plain.len())]]);
        }
        SummaryOutput { text, kept }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_text::FactId;

    fn truth_simple() -> QueryTruth {
        QueryTruth {
            base: vec![BaseFact {
                id: FactId(1),
                answer: vec![TokenId(100), TokenId(101)],
                in_answer: true,
            }],
            derived: vec![],
        }
    }

    fn truth_joint() -> QueryTruth {
        QueryTruth {
            base: vec![
                BaseFact {
                    id: FactId(1),
                    answer: vec![TokenId(100)],
                    in_answer: false,
                },
                BaseFact {
                    id: FactId(2),
                    answer: vec![TokenId(101)],
                    in_answer: false,
                },
            ],
            derived: vec![DerivedFact {
                id: FactId(99),
                components: vec![FactId(1), FactId(2)],
                answer: vec![TokenId(200)],
            }],
        }
    }

    fn model() -> GenerationModel {
        GenerationModel::from_spec(&ModelSpec::mistral_7b_awq())
    }

    fn ctx_with(
        facts: &[(FactId, &[TokenId])],
        pad_before: usize,
        pad_after: usize,
    ) -> AnnotatedText {
        let mut t = AnnotatedText::new();
        t.push_tokens(&vec![TokenId(0); pad_before]);
        for (id, toks) in facts {
            t.push_fact(*id, toks);
        }
        t.push_tokens(&vec![TokenId(0); pad_after]);
        t
    }

    const BOILER: &[TokenId] = &[TokenId(900), TokenId(901), TokenId(902)];

    #[test]
    fn litm_weight_is_one_for_short_contexts() {
        let m = model();
        assert_eq!(m.litm_weight(100, 500), 1.0);
    }

    #[test]
    fn litm_dip_grows_with_length_and_is_worst_mid_context() {
        let m = model();
        let mid_short = m.litm_weight(1_000, 2_000);
        let mid_long = m.litm_weight(9_000, 18_000);
        let edge_long = m.litm_weight(100, 18_000);
        assert!(mid_long < mid_short, "{mid_long} !< {mid_short}");
        assert!(edge_long > mid_long);
        assert!(m.litm_weight(0, 18_000) > 0.99);
    }

    #[test]
    fn answer_extracts_present_fact_in_short_context() {
        let m = model();
        let truth = truth_simple();
        let ctx = ctx_with(&[(FactId(1), &[TokenId(50), TokenId(51)])], 10, 10);
        // Aggregate over seeds: extraction should succeed at ~capability rate.
        let hits = (0..200)
            .filter(|&s| {
                m.answer(s, &truth, &ctx, BOILER, 1)
                    .extracted
                    .contains(&FactId(1))
            })
            .count();
        assert!(hits > 160, "extraction rate too low: {hits}/200");
    }

    #[test]
    fn answer_never_extracts_absent_fact() {
        let m = model();
        let truth = truth_simple();
        let ctx = ctx_with(&[(FactId(7), &[TokenId(50)])], 10, 10); // Wrong fact.
        for s in 0..50 {
            let out = m.answer(s, &truth, &ctx, BOILER, 1);
            assert!(out.extracted.is_empty());
            assert_eq!(out.coverage, 0.0);
            // Output is pure boilerplate.
            assert!(out.tokens.iter().all(|t| BOILER.contains(t)));
        }
    }

    #[test]
    fn joint_fact_requires_co_visibility() {
        let m = model();
        let truth = truth_joint();
        // Both components in one context: derivation possible.
        let both = ctx_with(
            &[(FactId(1), &[TokenId(1)]), (FactId(2), &[TokenId(2)])],
            5,
            5,
        );
        let joint_hits = (0..300)
            .filter(|&s| {
                m.answer(s, &truth, &both, BOILER, 1)
                    .extracted
                    .contains(&FactId(99))
            })
            .count();
        assert!(joint_hits > 150, "joint derivation too rare: {joint_hits}");

        // Only one component visible: derivation impossible.
        let one = ctx_with(&[(FactId(1), &[TokenId(1)])], 5, 5);
        for s in 0..100 {
            assert!(!m
                .answer(s, &truth, &one, BOILER, 1)
                .extracted
                .contains(&FactId(99)));
        }
    }

    #[test]
    fn long_context_hurts_mid_buried_fact() {
        let m = model();
        let truth = truth_simple();
        let short = ctx_with(&[(FactId(1), &[TokenId(50)])], 200, 200);
        let long = ctx_with(&[(FactId(1), &[TokenId(50)])], 9_000, 9_000);
        let rate = |ctx: &AnnotatedText| {
            (0..300)
                .filter(|&s| m.answer(s, &truth, ctx, BOILER, 1).coverage > 0.0)
                .count()
        };
        let r_short = rate(&short);
        let r_long = rate(&long);
        assert!(
            r_short as f64 > r_long as f64 + 30.0,
            "litm not biting: short={r_short} long={r_long}"
        );
    }

    #[test]
    fn confidence_tracks_coverage() {
        let m = model();
        let truth = truth_simple();
        let good = ctx_with(&[(FactId(1), &[TokenId(50)])], 5, 5);
        let bad = ctx_with(&[], 5, 5);
        let mut conf_good = 0.0;
        let mut conf_bad = 0.0;
        for s in 0..100 {
            conf_good += m.answer(s, &truth, &good, BOILER, 1).confidence;
            conf_bad += m.answer(s, &truth, &bad, BOILER, 1).confidence;
        }
        assert!(conf_good > conf_bad + 30.0);
    }

    #[test]
    fn answer_is_deterministic_per_seed() {
        let m = model();
        let truth = truth_joint();
        let ctx = ctx_with(
            &[(FactId(1), &[TokenId(1)]), (FactId(2), &[TokenId(2)])],
            50,
            50,
        );
        let a = m.answer(42, &truth, &ctx, BOILER, 1);
        let b = m.answer(42, &truth, &ctx, BOILER, 1);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.extracted, b.extracted);
    }

    #[test]
    fn summary_keeps_relevant_fact_within_budget() {
        let m = model();
        let truth = truth_simple();
        let chunk = ctx_with(&[(FactId(1), &[TokenId(50), TokenId(51)])], 100, 100);
        let out = m.summarize(7, &truth, &chunk, 60);
        assert!(out.text.len() <= 60);
        // Generous budget: fact should usually be kept.
        let kept = (0..100)
            .filter(|&s| m.summarize(s, &truth, &chunk, 60).kept.contains(&FactId(1)))
            .count();
        assert!(kept > 70, "summary keep rate too low: {kept}");
    }

    #[test]
    fn tiny_budget_loses_facts() {
        let m = model();
        let truth = truth_simple();
        let chunk = ctx_with(&[(FactId(1), &[TokenId(50); 10])], 100, 100);
        // Budget smaller than the fact span: must always drop it.
        for s in 0..50 {
            let out = m.summarize(s, &truth, &chunk, 5);
            assert!(out.kept.is_empty());
            assert!(out.text.len() <= 5);
        }
    }

    #[test]
    fn irrelevant_facts_do_not_enter_summary() {
        let m = model();
        let truth = truth_simple();
        let chunk = ctx_with(&[(FactId(55), &[TokenId(50)])], 20, 20);
        for s in 0..20 {
            assert!(m.summarize(s, &truth, &chunk, 50).kept.is_empty());
        }
    }

    #[test]
    fn gold_answer_excludes_intermediate_hops() {
        let truth = truth_joint();
        let gold = truth.gold_answer();
        assert_eq!(gold, vec![TokenId(200)]);
        assert!(truth.requires_joint());
        assert_eq!(truth.pieces(), 2);
    }
}

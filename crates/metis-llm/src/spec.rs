//! Model specifications.
//!
//! Architecture numbers follow the public model cards of the models the
//! paper serves (Mistral-7B-v0.3, Llama-3.1-70B) and profiles with (GPT-4o,
//! Llama-3.1-70B). The KV-cache geometry — the quantity METIS's best-fit
//! scheduler reasons about — is exact:
//! `bytes/token = 2 (K and V) × layers × kv_heads × head_dim × bytes(dtype)`.

/// Weight quantization scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quantization {
    /// 16-bit floating point weights.
    Fp16,
    /// AWQ 4-bit weights (the paper quantizes both serving models with AWQ).
    Awq4,
}

impl Quantization {
    /// Average bytes per weight parameter, including group-scale overhead
    /// for AWQ.
    pub fn bytes_per_param(self) -> f64 {
        match self {
            Quantization::Fp16 => 2.0,
            // 4-bit weights + per-group fp16 scales/zeros (group size 128).
            Quantization::Awq4 => 0.5 * 1.06,
        }
    }

    /// Kernel speedup of quantized GEMMs relative to fp16 for
    /// compute-bound (prefill) work. AWQ kernels (Marlin-class) deliver a
    /// modest speedup from halved weight traffic.
    pub fn compute_speedup(self) -> f64 {
        match self {
            Quantization::Fp16 => 1.0,
            Quantization::Awq4 => 1.8,
        }
    }
}

/// Which model this spec describes (used for pricing and reports).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelKind {
    /// Local open-weights model served on our GPUs.
    Local,
    /// API model (priced per token, no local GPU footprint).
    Api,
}

/// A transformer model specification.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Model name for reports.
    pub name: String,
    /// Total parameter count.
    pub params: u64,
    /// Decoder layer count.
    pub layers: u32,
    /// Attention head dimension.
    pub head_dim: u32,
    /// Number of KV heads (grouped-query attention).
    pub kv_heads: u32,
    /// Hidden size (for the quadratic attention term in prefill).
    pub hidden: u32,
    /// Maximum context length in tokens.
    pub max_context: u32,
    /// Weight quantization.
    pub quant: Quantization,
    /// Local or API model.
    pub kind: ModelKind,
    /// Fact-extraction capability in `[0, 1]` (drives the quality model).
    pub capability: f64,
    /// Joint-reasoning capability in `[0, 1]` (derived facts).
    pub reasoning: f64,
    /// API price, $ per 1M input tokens (API models only).
    pub usd_per_mtok_in: f64,
    /// API price, $ per 1M output tokens (API models only).
    pub usd_per_mtok_out: f64,
}

impl ModelSpec {
    /// Mistral-7B-v0.3 with AWQ — the paper's default serving model.
    pub fn mistral_7b_awq() -> Self {
        Self {
            name: "mistral-7b-v0.3-awq".into(),
            params: 7_250_000_000,
            layers: 32,
            head_dim: 128,
            kv_heads: 8,
            hidden: 4096,
            max_context: 32_768,
            quant: Quantization::Awq4,
            kind: ModelKind::Local,
            capability: 0.93,
            reasoning: 0.88,
            usd_per_mtok_in: 0.0,
            usd_per_mtok_out: 0.0,
        }
    }

    /// Llama-3.1-70B with AWQ — the paper's larger serving model (2 GPUs).
    pub fn llama31_70b_awq() -> Self {
        Self {
            name: "llama-3.1-70b-awq".into(),
            params: 70_600_000_000,
            layers: 80,
            head_dim: 128,
            kv_heads: 8,
            hidden: 8192,
            max_context: 131_072,
            quant: Quantization::Awq4,
            kind: ModelKind::Local,
            capability: 0.95,
            reasoning: 0.92,
            usd_per_mtok_in: 0.0,
            usd_per_mtok_out: 0.0,
        }
    }

    /// GPT-4o — the paper's default profiler model and one of the expensive
    /// fixed-config comparison points in the cost experiment (Fig. 13).
    pub fn gpt4o() -> Self {
        Self {
            name: "gpt-4o".into(),
            params: 200_000_000_000, // Public estimate; only used for capability scaling.
            layers: 120,
            head_dim: 128,
            kv_heads: 8,
            hidden: 12_288,
            max_context: 128_000,
            quant: Quantization::Fp16,
            kind: ModelKind::Api,
            capability: 0.96,
            reasoning: 0.95,
            usd_per_mtok_in: 2.50,
            usd_per_mtok_out: 10.00,
        }
    }

    /// Llama-3.1-70B used *as the profiler* (Fig. 17): same weights as the
    /// serving variant but invoked through the HuggingFace API interface.
    pub fn llama31_70b_profiler() -> Self {
        let mut spec = Self::llama31_70b_awq();
        spec.name = "llama-3.1-70b-profiler".into();
        spec
    }

    /// KV-cache bytes for a single token (fp16 KV).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * u64::from(self.layers) * u64::from(self.kv_heads) * u64::from(self.head_dim) * 2
    }

    /// Weight footprint in bytes under this spec's quantization.
    pub fn weight_bytes(&self) -> u64 {
        (self.params as f64 * self.quant.bytes_per_param()) as u64
    }

    /// FLOPs per token of forward pass (the standard `2 × params` estimate).
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.params as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mistral_kv_geometry_matches_model_card() {
        let m = ModelSpec::mistral_7b_awq();
        // 2 × 32 layers × 8 kv heads × 128 dim × 2 bytes = 131072 B/token.
        assert_eq!(m.kv_bytes_per_token(), 131_072);
    }

    #[test]
    fn llama70b_kv_is_2_5x_mistral() {
        let m = ModelSpec::mistral_7b_awq();
        let l = ModelSpec::llama31_70b_awq();
        assert_eq!(l.kv_bytes_per_token(), 327_680);
        assert!(l.kv_bytes_per_token() > 2 * m.kv_bytes_per_token());
    }

    #[test]
    fn awq_weights_are_roughly_quarter_of_fp16() {
        let m = ModelSpec::mistral_7b_awq();
        let awq = m.weight_bytes() as f64;
        let fp16 = m.params as f64 * 2.0;
        assert!(awq < fp16 * 0.30 && awq > fp16 * 0.20);
    }

    #[test]
    fn capability_orders_models() {
        assert!(ModelSpec::gpt4o().capability > ModelSpec::llama31_70b_awq().capability);
        assert!(ModelSpec::llama31_70b_awq().capability > ModelSpec::mistral_7b_awq().capability);
    }

    #[test]
    fn api_model_has_prices() {
        let g = ModelSpec::gpt4o();
        assert_eq!(g.kind, ModelKind::Api);
        assert!(g.usd_per_mtok_in > 0.0 && g.usd_per_mtok_out > g.usd_per_mtok_in);
    }
}

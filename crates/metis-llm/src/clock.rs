//! Pluggable time sources: the `Clock` trait and its two implementations.
//!
//! Everything in the stack — engine iterations, arrival pacing, the
//! runner's Profile → Decide → Retrieve → Submit event chain — reasons in
//! virtual [`Nanos`]. What varies between the deterministic simulator and
//! live serving is only *who makes virtual time pass*:
//!
//! * [`VirtualClock`] — an owned counter that jumps instantly to any
//!   requested instant. The discrete-event driver advances it by exactly
//!   the durations the latency model emits, which is what makes simulated
//!   runs bit-for-bit reproducible.
//! * [`WallClock`] — reads the machine's monotonic clock, scaled by a
//!   `time_scale` factor so a two-hour diurnal trace replays in seconds
//!   (virtual time passes `time_scale`× faster than wall time). It cannot
//!   jump; waiting for an instant means actually sleeping.
//!
//! Both clocks speak the same `Nanos` timeline, so timestamps produced
//! under either are directly comparable — the property the realtime-parity
//! benches rely on.

use std::time::{Duration, Instant};

use crate::time::Nanos;

/// A source of virtual time.
///
/// `now` is monotone non-decreasing. `advance_to` moves time forward
/// without waiting where the clock allows it (virtual time); `sleep_until`
/// blocks until the clock reads at least the target instant (a virtual
/// clock "blocks" by jumping).
///
/// ```
/// use metis_llm::{Clock, VirtualClock};
///
/// let mut clock = VirtualClock::at(0);
/// clock.advance_to(5_000);
/// assert_eq!(clock.now(), 5_000);
/// // A virtual clock "sleeps" by jumping: no wall time passes.
/// clock.sleep_until(7_000);
/// assert_eq!(clock.now(), 7_000);
/// // Time never runs backwards.
/// clock.advance_to(6_000);
/// assert_eq!(clock.now(), 7_000);
/// ```
pub trait Clock: Send {
    /// The current virtual instant.
    fn now(&self) -> Nanos;

    /// Moves the clock forward to `t` if it can do so without waiting.
    /// Instants in the past are ignored (time never goes backwards). Wall
    /// clocks cannot jump; for them this is a no-op and time passes on its
    /// own.
    fn advance_to(&mut self, t: Nanos);

    /// Blocks until `now() >= t` and returns the new reading. A virtual
    /// clock jumps instantly; a wall clock sleeps for the scaled wall
    /// duration.
    fn sleep_until(&mut self, t: Nanos) -> Nanos;
}

/// Deterministic owned virtual time: the simulator's clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: Nanos,
}

impl VirtualClock {
    /// A virtual clock starting at instant `start`.
    pub fn at(start: Nanos) -> Self {
        Self { now: start }
    }

    /// Advances by a duration (the engine's per-iteration tick).
    pub fn advance_by(&mut self, dt: Nanos) {
        self.now = self.now.saturating_add(dt);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Nanos {
        self.now
    }

    fn advance_to(&mut self, t: Nanos) {
        self.now = self.now.max(t);
    }

    fn sleep_until(&mut self, t: Nanos) -> Nanos {
        self.advance_to(t);
        self.now
    }
}

/// Scaled wall-clock time: the live driver's clock.
///
/// Virtual `Nanos` are wall nanoseconds since the clock's epoch multiplied
/// by `time_scale`. Clones share the epoch (an [`Instant`] is `Copy`), so
/// every thread holding a clone of the same `WallClock` reads one common
/// timeline — the driver hands one clone to each replica worker.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
    time_scale: f64,
}

/// Below this wall-duration, `sleep_until` spins instead of sleeping:
/// `thread::sleep` wakes late by scheduler quanta, and at high time scales
/// that lateness is multiplied into visible virtual-time jitter.
const SPIN_THRESHOLD_WALL_NANOS: u64 = 200_000;

impl WallClock {
    /// A wall clock whose virtual time starts at 0 *now* and passes
    /// `time_scale`× faster than wall time.
    ///
    /// # Panics
    ///
    /// Panics unless `time_scale` is finite and positive.
    #[allow(clippy::disallowed_methods)] // the Clock impl is the sanctioned wall-clock site
    pub fn new(time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time_scale must be finite and positive, got {time_scale}"
        );
        Self {
            epoch: Instant::now(),
            time_scale,
        }
    }

    /// The virtual-per-wall speedup factor.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Wall nanoseconds a virtual duration takes to pass.
    fn wall_nanos(&self, virtual_nanos: Nanos) -> u64 {
        (virtual_nanos as f64 / self.time_scale).ceil() as u64
    }
}

impl Clock for WallClock {
    fn now(&self) -> Nanos {
        let wall = self.epoch.elapsed().as_nanos() as f64;
        (wall * self.time_scale) as Nanos
    }

    fn advance_to(&mut self, _t: Nanos) {
        // Wall time cannot jump; it passes on its own.
    }

    fn sleep_until(&mut self, t: Nanos) -> Nanos {
        loop {
            let now = self.now();
            if now >= t {
                return now;
            }
            let wall = self.wall_nanos(t - now);
            if wall > SPIN_THRESHOLD_WALL_NANOS {
                // Sleep most of the way, finish with a tighter pass.
                #[allow(clippy::disallowed_methods)]
                // the Clock impl is the sanctioned wall-clock site
                std::thread::sleep(Duration::from_nanos(wall - SPIN_THRESHOLD_WALL_NANOS / 2));
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_jumps_and_never_rewinds() {
        let mut c = VirtualClock::at(100);
        assert_eq!(c.now(), 100);
        c.advance_to(50);
        assert_eq!(c.now(), 100, "time never goes backwards");
        c.advance_to(250);
        assert_eq!(c.now(), 250);
        c.advance_by(10);
        assert_eq!(c.now(), 260);
        assert_eq!(c.sleep_until(1_000), 1_000);
        assert_eq!(c.now(), 1_000);
    }

    #[test]
    fn wall_clock_scales_and_sleeps() {
        // 1e6× scale: 1 wall µs = 1 virtual ms, so the test stays fast.
        let mut c = WallClock::new(1_000_000.0);
        let t0 = c.now();
        // advance_to cannot jump a wall clock.
        c.advance_to(t0 + 60_000_000_000_000);
        assert!(c.now() < t0 + 60_000_000_000_000);
        let target = c.now() + 5_000_000_000; // 5 virtual s = 5 wall µs.
        let reached = c.sleep_until(target);
        assert!(reached >= target);
        // Clones share the epoch and therefore the timeline.
        let c2 = c;
        let (a, b) = (c.now(), c2.now());
        assert!(a.abs_diff(b) < 2_000_000_000, "clones read one timeline");
    }

    #[test]
    #[should_panic(expected = "time_scale must be finite and positive")]
    fn zero_time_scale_is_rejected() {
        let _ = WallClock::new(0.0);
    }
}

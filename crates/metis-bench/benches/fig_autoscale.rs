//! Fleet elasticity beyond the paper: queue-driven autoscaling on a
//! diurnal day, and KV migration vs recompute under preemption pressure.
//!
//! **Part 1 — the elasticity frontier.** The paper evaluates METIS on a
//! fixed fleet; an operator pays for replica-seconds whether or not the
//! trough needs them. This sweep serves one diurnal day (sinusoidal rate,
//! [`diurnal_arrivals`]) under the [`Autoscaler`] (starting from a single
//! replica) and under fixed fleets of {2, 4, 8}, all with SLO-derived
//! priorities. The expectation: the autoscaler bills strictly fewer
//! replica-seconds than fixed-8 while holding interactive p99 delay inside
//! fixed-8's tolerance band — it buys capacity for the peak and returns it
//! at the trough.
//!
//! **Part 2 — the preemption-resume trade.** Under KV pressure the
//! preemptive scheduler evicts batch-class sequences. Recompute throws the
//! victim's computed tokens away; migrate re-places the victim on a replica
//! with KV headroom, pricing the transfer at [`MIGRATION_BW_BYTES_PER_SEC`]
//! and falling back to recompute at zero headroom. On the same burst (one
//! seed, common random numbers) migrate must cut the recomputed-token bill.
//!
//! Scale knob: `METIS_BENCH_QUERIES` (CI smoke runs set it low; the
//! expectations above are asserted at every scale). Emits
//! `bench-reports/fig_autoscale.json`, diffed against `baselines/` by the
//! CI perf gate.

use metis_bench::{base_qps, bench_queries, dataset, emit, header, new_report, Sweep, RUN_SEED};
use metis_core::{Autoscaler, MetisOptions, RunConfig, RunResult, Runner, SystemKind};
use metis_datasets::{burst_arrivals, diurnal_arrivals, Dataset, DatasetKind};
use metis_engine::{PreemptMode, Priority, RouterPolicy};

const FIXED_FLEETS: [usize; 3] = [2, 4, 8];
/// Per-replica KV cap for the diurnal day (Part 1): tight enough that
/// admission contends at the peak, so queue depth — the autoscaler's
/// signal — reflects saturation instead of everything batching in.
const DAY_KV_CAP_BYTES: u64 = 2 << 30;
/// Per-replica KV cap for the preemption-pressure arm (Part 2).
const KV_CAP_BYTES: u64 = 512 << 20;
/// Diurnal mean rate as a multiple of the dataset's calibrated base rate —
/// the peak (2× the mean) must outrun a small fleet so the autoscaler has
/// something to do.
const DAY_RATE_SCALE: f64 = 2.0;

fn system() -> SystemKind {
    let mut opts = MetisOptions::full();
    opts.priority_from_slo = true;
    SystemKind::Metis(opts)
}

/// The bench's scaling policy: a trough-adequate floor of 4 replicas
/// (fixed-4 already serves the day's mean), headroom to the largest fixed
/// fleet it is compared against, and a tight band (up at queue depth 2,
/// down at 1) evaluated every 500 ms so the peak is met before its queues
/// age into the tail.
fn policy() -> Autoscaler {
    Autoscaler {
        min_replicas: 4,
        max_replicas: 8,
        scale_up_queue_depth: 2,
        scale_down_queue_depth: 1,
        scale_up_pressure: 0.5,
        eval_interval_nanos: 500_000_000,
        cooldown_nanos: 2_000_000_000,
        warmup_nanos: 1_000_000_000,
    }
}

fn day_run(d: &Dataset, seed: u64, n: usize, fleet: Option<usize>) -> RunResult {
    let rate = base_qps(DatasetKind::Musique) * DAY_RATE_SCALE;
    let arrivals = diurnal_arrivals(seed, rate, n);
    let mut cfg = match fleet {
        Some(replicas) => RunConfig::standard(system(), arrivals, seed)
            .replicated(replicas, RouterPolicy::LeastKvLoad),
        None => {
            // The elastic arm starts at the policy's floor and grows from
            // there; the scaler never *raises* a fleet below its floor.
            let mut cfg = RunConfig::standard(system(), arrivals, seed)
                .replicated(policy().min_replicas, RouterPolicy::LeastKvLoad);
            cfg = cfg.with_autoscale(policy());
            cfg
        }
    };
    cfg.engine.kv_pool_bytes_cap = Some(DAY_KV_CAP_BYTES);
    Runner::new(d, cfg).run()
}

fn pressure_run(d: &Dataset, seed: u64, n: usize, mode: PreemptMode) -> RunResult {
    // Round-robin (not least-KV) so one replica can saturate while a peer
    // keeps headroom — migration needs somewhere to go.
    let arrivals = burst_arrivals(seed, 1.4, 8.0, n);
    let mut cfg =
        RunConfig::standard(system(), arrivals, seed).replicated(3, RouterPolicy::RoundRobin);
    cfg.engine.kv_pool_bytes_cap = Some(KV_CAP_BYTES);
    cfg.engine.preempt_mode = mode;
    Runner::new(d, cfg).run()
}

fn main() {
    header(
        "Fleet elasticity",
        "autoscaler vs fixed fleets on a diurnal day; migrate vs recompute under KV pressure",
        "the autoscaler bills strictly fewer replica-seconds than fixed-8 \
         while holding interactive p99 inside fixed-8's band; on a contended \
         burst, KV migration cuts the recomputed-token bill vs recompute",
    );
    let n = bench_queries(96);
    let kind = DatasetKind::Musique;
    let d = dataset(kind, n);
    println!(
        "\n--- {} ({} queries, diurnal mean λ = {}/s, day cap {} GiB, pressure cap {} MiB/replica) ---",
        kind.name(),
        n,
        base_qps(kind) * DAY_RATE_SCALE,
        DAY_KV_CAP_BYTES >> 30,
        KV_CAP_BYTES >> 20,
    );

    let mut sweep = Sweep::new("fig_autoscale");
    {
        let d = &d;
        sweep = sweep.cell_with_seed("day/autoscale", RUN_SEED, move |seed| {
            day_run(d, seed, n, None)
        });
        for &fleet in &FIXED_FLEETS {
            sweep = sweep.cell_with_seed(format!("day/fixed-{fleet}"), RUN_SEED, move |seed| {
                day_run(d, seed, n, Some(fleet))
            });
        }
        sweep = sweep
            .cell_with_seed("pressure/recompute", RUN_SEED, move |seed| {
                pressure_run(d, seed, n, PreemptMode::Recompute)
            })
            .cell_with_seed("pressure/migrate", RUN_SEED, move |seed| {
                pressure_run(d, seed, n, PreemptMode::Migrate)
            });
    }
    let cells = sweep.run();
    let find = |id: &str| -> &RunResult {
        &cells
            .iter()
            .find(|c| c.id == id)
            .expect("cell computed")
            .value
    };
    let int_p99 = |r: &RunResult| r.latency_of(Priority::Interactive).p99();

    println!(
        "  {:<16} {:>6} {:>8} {:>16} {:>14} {:>12}",
        "fleet", "peak", "rep-sec", "int p99(s)", "all p99(s)", "preempts"
    );
    for id in ["day/autoscale", "day/fixed-2", "day/fixed-4", "day/fixed-8"] {
        let r = find(id);
        println!(
            "  {:<16} {:>6} {:>8.1} {:>16.2} {:>14.2} {:>12}",
            id.trim_start_matches("day/"),
            r.peak_replicas,
            r.replica_seconds,
            int_p99(r),
            r.latency().p99(),
            r.preemptions,
        );
    }
    println!(
        "  {:<16} {:>10} {:>14} {:>16} {:>14}",
        "resume", "preempts", "migrations", "moved KV tok", "recomputed tok"
    );
    for id in ["pressure/recompute", "pressure/migrate"] {
        let r = find(id);
        println!(
            "  {:<16} {:>10} {:>14} {:>16} {:>14}",
            id.trim_start_matches("pressure/"),
            r.preemptions,
            r.migrations,
            r.migrated_tokens,
            r.preempted_tokens,
        );
    }

    // The headline claims, asserted at every scale the bench runs at. The
    // CI perf gate only diffs the standard per-cell metrics, so the
    // elasticity acceptance lives here, next to the numbers it is about.
    let auto = find("day/autoscale");
    let fixed8 = find("day/fixed-8");
    assert!(
        auto.replica_seconds < fixed8.replica_seconds,
        "autoscaler bills {:.1} replica-seconds, fixed-8 bills {:.1}",
        auto.replica_seconds,
        fixed8.replica_seconds
    );
    assert!(
        int_p99(auto) <= int_p99(fixed8) * 1.10 + 0.75,
        "autoscaled interactive p99 {:.2}s left fixed-8's band ({:.2}s)",
        int_p99(auto),
        int_p99(fixed8)
    );
    let recompute = find("pressure/recompute");
    let migrate = find("pressure/migrate");
    assert!(
        recompute.preemptions > 0,
        "the pressure burst must force evictions"
    );
    assert!(migrate.migrations > 0, "victims must actually move");
    assert!(
        migrate.preempted_tokens < recompute.preempted_tokens,
        "migrate recomputes {} tokens, recompute {}",
        migrate.preempted_tokens,
        recompute.preempted_tokens
    );

    let mut report = new_report(
        "fig_autoscale",
        "Queue-driven autoscaling and KV migration under pressure",
    )
    .knob("queries", n)
    .knob("dataset", kind.name())
    .knob("day_rate_scale", DAY_RATE_SCALE)
    .knob("day_kv_cap_gib", DAY_KV_CAP_BYTES >> 30)
    .knob("pressure_kv_cap_mib", KV_CAP_BYTES >> 20);
    for cell in &cells {
        let r = &cell.value;
        // Every cell carries the elasticity metrics explicitly (fixed
        // fleets and recompute cells would otherwise omit them as
        // defaults), so baseline diffs see the whole frontier.
        report.cells.push(
            r.cell_report(&cell.id, cell.seed)
                .knob("dataset", kind.name())
                .metric("replica_seconds", r.replica_seconds)
                .metric("peak_replicas", r.peak_replicas as f64)
                .metric("interactive_delay_p99_secs", int_p99(r))
                .metric("recomputed_tokens", r.preempted_tokens as f64)
                .metric("migrations", r.migrations as f64),
        );
    }
    emit(&report);
}

//! Preemptive SLO-class scheduling under bursty load: interactive-class
//! p99 queueing delay of FCFS vs the preemptive scheduler, swept over
//! burst factor × {1, 4} replicas.
//!
//! This experiment goes beyond the paper (whose engine admits FCFS "as in
//! vLLM"): under on/off bursts the FCFS queue head-of-line blocks every
//! class equally, while the preemptive scheduler evicts batch-class work to
//! admit interactive queries immediately. The expectation is that
//! preemption strictly improves interactive p99 queueing delay at burst
//! factors ≥ 4 and equal replica count, paying with batch-class waits —
//! the SLO-differentiated trade an operator wants.
//!
//! Each replica's KV working memory is capped at 2 GiB (the low end of the
//! paper's Fig. 8 scale): scheduling policy only matters when bursts
//! actually contend on KV.
//!
//! Scale knob: `METIS_BENCH_QUERIES` (CI smoke runs set it low). Emits
//! `bench-reports/fig_preempt.json` — one of the three reports the CI perf
//! gate diffs against `baselines/`.

use metis_bench::{
    base_qps, bench_queries, dataset, emit, header, new_report, run_with_arrivals, Sweep, RUN_SEED,
};
use metis_core::{MetisOptions, RunResult, SystemKind};
use metis_datasets::{burst_arrivals, DatasetKind};
use metis_engine::{Priority, RouterPolicy};

const BURST_FACTORS: [f64; 3] = [1.0, 4.0, 8.0];
const REPLICAS: [usize; 2] = [1, 4];
const KV_CAP_BYTES: u64 = 2 * (1 << 30);

fn system(preemptive: bool) -> SystemKind {
    let mut opts = MetisOptions::full();
    opts.priority_from_slo = true;
    opts.preemptive = preemptive;
    opts.gang = false; // The baseline arm is plain vLLM FCFS admission.
    SystemKind::Metis(opts)
}

fn main() {
    header(
        "Preemptive scheduling",
        "interactive p99 queueing delay, FCFS vs preemptive, under bursts",
        "preemption strictly improves interactive p99 queueing delay at \
         burst factor >= 4 and equal replica count; batch-class waits absorb \
         the cost and overall quality is unchanged",
    );
    let n = bench_queries(96);
    let kind = DatasetKind::Musique;
    let d = dataset(kind, n);
    let base = base_qps(kind);
    println!(
        "\n--- {} ({} queries, base λ = {base}/s, KV cap {} GiB/replica) ---",
        kind.name(),
        n,
        KV_CAP_BYTES >> 30,
    );
    println!(
        "  {:<7} {:<9} {:>16} {:>16} {:>10} {:>12}",
        "burst", "replicas", "fcfs int p99(s)", "pre int p99(s)", "preempts", "all p99(s)"
    );

    let mut sweep = Sweep::new("fig_preempt");
    for &factor in &BURST_FACTORS {
        for &replicas in &REPLICAS {
            for preemptive in [false, true] {
                let d = &d;
                let policy = if preemptive { "preemptive" } else { "fcfs" };
                sweep = sweep.cell_with_seed(
                    format!("{factor:.0}x/{replicas}r/{policy}"),
                    RUN_SEED,
                    move |seed| {
                        // Offered load scales with the replica count so the
                        // per-replica contention regime stays comparable.
                        let arrivals =
                            burst_arrivals(seed, base * replicas as f64 * 1.5, factor, n);
                        run_with_arrivals(
                            d,
                            system(preemptive),
                            arrivals,
                            seed,
                            replicas,
                            RouterPolicy::LeastKvLoad,
                            Some(KV_CAP_BYTES),
                        )
                    },
                );
            }
        }
    }
    let cells = sweep.run();
    let find = |factor: f64, replicas: usize, policy: &str| -> &RunResult {
        &cells
            .iter()
            .find(|c| c.id == format!("{factor:.0}x/{replicas}r/{policy}"))
            .expect("cell computed")
            .value
    };
    for &factor in &BURST_FACTORS {
        for &replicas in &REPLICAS {
            let fcfs = find(factor, replicas, "fcfs");
            let pre = find(factor, replicas, "preemptive");
            let int_p99 = |r: &RunResult| r.queue_wait(Some(Priority::Interactive)).p99();
            println!(
                "  {:<7} {:<9} {:>16.2} {:>16.2} {:>10} {:>12.2}",
                format!("{factor:.0}x"),
                replicas,
                int_p99(fcfs),
                int_p99(pre),
                pre.preemptions,
                pre.latency().p99(),
            );
        }
    }

    let mut report = new_report(
        "fig_preempt",
        "FCFS vs preemptive SLO-class scheduling under bursty arrivals",
    )
    .knob("queries", n)
    .knob("dataset", kind.name())
    .knob("kv_cap_gib", KV_CAP_BYTES >> 30);
    for cell in &cells {
        let r = &cell.value;
        // The gate watches the interactive class specifically: that tail is
        // the whole point of the preemptive scheduler.
        report.cells.push(
            r.cell_report(&cell.id, cell.seed)
                .knob("dataset", kind.name())
                .metric(
                    "interactive_queue_wait_p99_secs",
                    r.queue_wait(Some(Priority::Interactive)).p99(),
                ),
        );
    }
    emit(&report);
}

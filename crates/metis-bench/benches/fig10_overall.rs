//! Figure 10: overall delay and quality across all four datasets —
//! METIS vs AdaptiveRAG*, Parrot*, and vLLM fixed configurations.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig10_overall.json`.

use metis_bench::{
    adaptive_rag, base_qps, bench_queries, best_quality_fixed, closest_delay_fixed, dataset, emit,
    fixed_menu, header, metis, new_report, print_rows, run, sweep_fixed, Row, Sweep, RUN_SEED,
};
use metis_datasets::DatasetKind;

fn main() {
    header(
        "Figure 10",
        "Overall improvement across the four datasets",
        "METIS: 1.64-2.54x lower delay than quality-optimized adaptation \
         (AdaptiveRAG*) and best fixed configs at no F1 loss; 12-18% higher \
         F1 than fixed configs of similar delay",
    );
    let n = bench_queries(150);
    let mut report = new_report(
        "fig10_overall",
        "METIS vs AdaptiveRAG*, Parrot*, and fixed configs on all datasets",
    )
    .knob("queries", n);
    for kind in DatasetKind::all() {
        let qps = base_qps(kind);
        let d = dataset(kind, n);
        let dref = &d;
        let adaptive_cells = Sweep::new(format!("fig10/{}", kind.name()))
            .cell_with_seed(format!("{}/metis", kind.name()), RUN_SEED, move |seed| {
                run(dref, metis(), qps, seed)
            })
            .cell_with_seed(
                format!("{}/adaptive_rag", kind.name()),
                RUN_SEED,
                move |seed| run(dref, adaptive_rag(), qps, seed),
            )
            .run();
        let m = &adaptive_cells[0].value;
        let a = &adaptive_cells[1].value;
        let sweep = sweep_fixed(&d, &fixed_menu(), qps, RUN_SEED, false);
        let (qc, qr) = best_quality_fixed(&sweep);
        let (dc, dr) = closest_delay_fixed(&sweep, m.mean_delay_secs());
        let parrot = sweep_fixed(&d, &[*qc], qps, RUN_SEED, true);
        let (pc, pr) = &parrot[0];

        println!(
            "\n--- {} (λ = {qps}/s, {} queries) ---",
            kind.name(),
            d.queries.len()
        );
        print_rows(&[
            Row::from_run("METIS", m),
            Row::from_run("AdaptiveRAG*", a),
            Row::from_run(format!("Parrot* [{}]", pc.label()), pr),
            Row::from_run(format!("vLLM best-quality [{}]", qc.label()), qr),
            Row::from_run(format!("vLLM similar-delay [{}]", dc.label()), dr),
        ]);
        println!(
            "  delay vs AdaptiveRAG*: {:.2}x | F1 delta: {:+.3}",
            a.mean_delay_secs() / m.mean_delay_secs(),
            m.mean_f1() - a.mean_f1()
        );
        println!(
            "  delay vs best-quality fixed: {:.2}x | F1 delta: {:+.3}",
            qr.mean_delay_secs() / m.mean_delay_secs(),
            m.mean_f1() - qr.mean_f1()
        );
        println!(
            "  F1 vs similar-delay fixed: {:+.1}%",
            (m.mean_f1() / dr.mean_f1().max(1e-9) - 1.0) * 100.0
        );

        for cell in &adaptive_cells {
            report.cells.push(
                cell.value
                    .cell_report(&cell.id, cell.seed)
                    .knob("dataset", kind.name()),
            );
        }
        report.cells.push(
            pr.cell_report(format!("{}/parrot", kind.name()), RUN_SEED)
                .knob("dataset", kind.name())
                .knob("config", pc.label()),
        );
        report.cells.push(
            qr.cell_report(format!("{}/vllm_best_quality", kind.name()), RUN_SEED)
                .knob("dataset", kind.name())
                .knob("config", qc.label()),
        );
        report.cells.push(
            dr.cell_report(format!("{}/vllm_similar_delay", kind.name()), RUN_SEED)
                .knob("dataset", kind.name())
                .knob("config", dc.label()),
        );
    }
    emit(&report);
}

//! Figure 10: overall delay and quality across all four datasets —
//! METIS vs AdaptiveRAG*, Parrot*, and vLLM fixed configurations.

use metis_bench::{
    adaptive_rag, base_qps, best_quality_fixed, closest_delay_fixed, dataset, fixed_menu, header,
    metis, print_rows, run, sweep_fixed, Row, RUN_SEED,
};
use metis_datasets::DatasetKind;

fn main() {
    header(
        "Figure 10",
        "Overall improvement across the four datasets",
        "METIS: 1.64-2.54x lower delay than quality-optimized adaptation \
         (AdaptiveRAG*) and best fixed configs at no F1 loss; 12-18% higher \
         F1 than fixed configs of similar delay",
    );
    for kind in DatasetKind::all() {
        let qps = base_qps(kind);
        let d = dataset(kind, 150);
        let m = run(&d, metis(), qps, RUN_SEED);
        let a = run(&d, adaptive_rag(), qps, RUN_SEED);
        let sweep = sweep_fixed(&d, &fixed_menu(), qps, RUN_SEED, false);
        let (qc, qr) = best_quality_fixed(&sweep);
        let (dc, dr) = closest_delay_fixed(&sweep, m.mean_delay_secs());
        let parrot = sweep_fixed(&d, &[*qc], qps, RUN_SEED, true);
        let (pc, pr) = &parrot[0];

        println!(
            "\n--- {} (λ = {qps}/s, {} queries) ---",
            kind.name(),
            d.queries.len()
        );
        print_rows(&[
            Row::from_run("METIS", &m),
            Row::from_run("AdaptiveRAG*", &a),
            Row::from_run(format!("Parrot* [{}]", pc.label()), pr),
            Row::from_run(format!("vLLM best-quality [{}]", qc.label()), qr),
            Row::from_run(format!("vLLM similar-delay [{}]", dc.label()), dr),
        ]);
        println!(
            "  delay vs AdaptiveRAG*: {:.2}x | F1 delta: {:+.3}",
            a.mean_delay_secs() / m.mean_delay_secs(),
            m.mean_f1() - a.mean_f1()
        );
        println!(
            "  delay vs best-quality fixed: {:.2}x | F1 delta: {:+.3}",
            qr.mean_delay_secs() / m.mean_delay_secs(),
            m.mean_f1() - qr.mean_f1()
        );
        println!(
            "  F1 vs similar-delay fixed: {:+.1}%",
            (m.mean_f1() / dr.mean_f1().max(1e-9) - 1.0) * 100.0
        );
    }
}

//! Appendix A.2: swapping the embedding model changes F1 by less than 1%
//! and delay not at all (retrieval is >100x cheaper than synthesis).
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits
//! `bench-reports/appendix_embeddings.json`.

use std::sync::Arc;

use metis_bench::{
    base_qps, bench_queries, emit, header, metis, new_report, run, Sweep, DATASET_SEED, RUN_SEED,
};
use metis_datasets::{build_dataset_with_embedder, DatasetKind};
use metis_embed::EmbedderKind;

fn main() {
    header(
        "Appendix A.2",
        "Changing the embedding model (Musique)",
        "Cohere-embed-v3 vs All-mpnet-base-v2 vs text-embedding-3-large-256: \
         F1 change within 1%, no measurable delay difference",
    );
    let kind = DatasetKind::Musique;
    let n = bench_queries(120);
    let mut sweep = Sweep::new("appendix_embeddings");
    for ek in EmbedderKind::all() {
        let name = ek.build().name().to_owned();
        sweep = sweep.cell_with_seed(name, RUN_SEED, move |seed| {
            let embedder = ek.build();
            let d = build_dataset_with_embedder(kind, n, DATASET_SEED, Arc::from(embedder));
            run(&d, metis(), base_qps(kind), seed)
        });
    }
    let cells = sweep.run();
    let baseline_f1 = cells[0].value.mean_f1();
    let mut report = new_report(
        "appendix_embeddings",
        "embedding-model sensitivity on Musique",
    )
    .knob("queries", n)
    .knob("dataset", kind.name());
    for (i, cell) in cells.iter().enumerate() {
        let f1 = cell.value.mean_f1();
        let delta = if i == 0 {
            0.0
        } else {
            (f1 / baseline_f1 - 1.0) * 100.0
        };
        println!(
            "  {:<34} F1 {:.3} ({:+.2}%)   delay {:>5.2}s",
            cell.id,
            f1,
            delta,
            cell.value.mean_delay_secs()
        );
        report.cells.push(
            cell.value
                .cell_report(&cell.id, cell.seed)
                .knob("embedder", &cell.id)
                .metric("f1_delta_pct_vs_first", delta),
        );
    }
    emit(&report);
}

//! Appendix A.2: swapping the embedding model changes F1 by less than 1%
//! and delay not at all (retrieval is >100x cheaper than synthesis).

use std::sync::Arc;

use metis_bench::{base_qps, header, metis, run, DATASET_SEED, RUN_SEED};
use metis_datasets::{build_dataset_with_embedder, DatasetKind};
use metis_embed::EmbedderKind;

fn main() {
    header(
        "Appendix A.2",
        "Changing the embedding model (Musique)",
        "Cohere-embed-v3 vs All-mpnet-base-v2 vs text-embedding-3-large-256: \
         F1 change within 1%, no measurable delay difference",
    );
    let kind = DatasetKind::Musique;
    let mut baseline_f1 = None;
    for ek in EmbedderKind::all() {
        let embedder = ek.build();
        let name = embedder.name().to_owned();
        let d = build_dataset_with_embedder(kind, 120, DATASET_SEED, Arc::from(embedder));
        let r = run(&d, metis(), base_qps(kind), RUN_SEED);
        let f1 = r.mean_f1();
        let delta = match baseline_f1 {
            None => {
                baseline_f1 = Some(f1);
                0.0
            }
            Some(b) => (f1 / b - 1.0) * 100.0,
        };
        println!(
            "  {:<34} F1 {:.3} ({:+.2}%)   delay {:>5.2}s",
            name,
            f1,
            delta,
            r.mean_delay_secs()
        );
    }
}

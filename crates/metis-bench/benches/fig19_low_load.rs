//! Figure 19: METIS under low load — queries sent sequentially, each after
//! the previous one completes (closed loop, no batching benefit).

use metis_bench::{
    base_qps, best_quality_fixed, dataset, fixed_menu, header, metis, run_on, sweep_fixed, RUN_SEED,
};
use metis_core::SystemKind;
use metis_datasets::DatasetKind;
use metis_llm::{GpuCluster, ModelSpec};

fn main() {
    header(
        "Figure 19",
        "Low load: closed-loop sequential queries",
        "METIS still reduces delay 1.48-1.56x vs vLLM's highest-quality \
         fixed config, because it only picks configurations relevant to the \
         query profile",
    );
    for kind in [DatasetKind::FinSec, DatasetKind::Musique] {
        let n = 80;
        let d = dataset(kind, n);
        // Best-quality fixed config is identified under open-loop load.
        let sweep = sweep_fixed(&d, &fixed_menu(), base_qps(kind), RUN_SEED, false);
        let (qc, _) = best_quality_fixed(&sweep);

        let closed = |system| {
            run_on(
                &d,
                system,
                vec![0; n],
                RUN_SEED,
                ModelSpec::mistral_7b_awq(),
                GpuCluster::single_a40(),
                true,
            )
        };
        let m = closed(metis());
        let v = closed(SystemKind::VllmFixed { config: *qc });
        println!("\n--- {} (sequential, {} queries) ---", kind.name(), n);
        println!(
            "  METIS             mean {:>6.2}s  F1 {:.3}",
            m.mean_delay_secs(),
            m.mean_f1()
        );
        println!(
            "  vLLM fixed [{}]   mean {:>6.2}s  F1 {:.3}",
            qc.label(),
            v.mean_delay_secs(),
            v.mean_f1()
        );
        println!(
            "  delay reduction: {:.2}x",
            v.mean_delay_secs() / m.mean_delay_secs()
        );
    }
}

//! Figure 19: METIS under low load — queries sent sequentially, each after
//! the previous one completes (closed loop, no batching benefit).
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig19_low_load.json`.

use metis_bench::{
    base_qps, bench_queries, best_quality_fixed, dataset, emit, fixed_menu, header, metis,
    new_report, run_on, sweep_fixed, Sweep, RUN_SEED,
};
use metis_core::SystemKind;
use metis_datasets::DatasetKind;
use metis_llm::{GpuCluster, ModelSpec};

fn main() {
    header(
        "Figure 19",
        "Low load: closed-loop sequential queries",
        "METIS still reduces delay 1.48-1.56x vs vLLM's highest-quality \
         fixed config, because it only picks configurations relevant to the \
         query profile",
    );
    let n = bench_queries(80);
    let mut report = new_report("fig19_low_load", "closed-loop sequential serving")
        .knob("queries", n)
        .knob("closed_loop", "true");
    for kind in [DatasetKind::FinSec, DatasetKind::Musique] {
        let d = dataset(kind, n);
        // Best-quality fixed config is identified under open-loop load.
        let sweep = sweep_fixed(&d, &fixed_menu(), base_qps(kind), RUN_SEED, false);
        let (qc, _) = best_quality_fixed(&sweep);
        let config = *qc;

        let dref = &d;
        let cells = Sweep::new(format!("fig19/{}", kind.name()))
            .cell_with_seed(format!("{}/metis", kind.name()), RUN_SEED, move |seed| {
                run_on(
                    dref,
                    metis(),
                    vec![0; n],
                    seed,
                    ModelSpec::mistral_7b_awq(),
                    GpuCluster::single_a40(),
                    true,
                )
            })
            .cell_with_seed(
                format!("{}/vllm_fixed", kind.name()),
                RUN_SEED,
                move |seed| {
                    run_on(
                        dref,
                        SystemKind::VllmFixed { config },
                        vec![0; n],
                        seed,
                        ModelSpec::mistral_7b_awq(),
                        GpuCluster::single_a40(),
                        true,
                    )
                },
            )
            .run();
        let m = &cells[0].value;
        let v = &cells[1].value;
        println!("\n--- {} (sequential, {} queries) ---", kind.name(), n);
        println!(
            "  METIS             mean {:>6.2}s  F1 {:.3}",
            m.mean_delay_secs(),
            m.mean_f1()
        );
        println!(
            "  vLLM fixed [{}]   mean {:>6.2}s  F1 {:.3}",
            qc.label(),
            v.mean_delay_secs(),
            v.mean_f1()
        );
        println!(
            "  delay reduction: {:.2}x",
            v.mean_delay_secs() / m.mean_delay_secs()
        );
        for cell in &cells {
            report.cells.push(
                cell.value
                    .cell_report(&cell.id, cell.seed)
                    .knob("dataset", kind.name())
                    .knob("config", qc.label()),
            );
        }
    }
    emit(&report);
}

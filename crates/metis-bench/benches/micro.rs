//! Criterion micro-benchmarks for the substrate layers: tokenizer,
//! embedding, vector search, KV allocator, engine iteration, and F1.
//!
//! Emits `bench-reports/micro.json` with each benchmark's median ns/iter
//! as an `extra` metric. These are wall-clock measurements — machine- and
//! load-dependent — so `micro` stays out of the CI perf gate's baseline
//! set (which covers only deterministic virtual-time experiments); the
//! report is an uploaded artifact for humans to diff across runs.

use criterion::{BatchSize, Criterion};

use metis_bench::{emit, new_report};
use metis_embed::{Embedder, HashEmbed};
use metis_engine::{
    Engine, EngineConfig, GroupId, KvAllocator, LlmRequest, Priority, RequestId, Stage,
};
use metis_llm::{GpuCluster, LatencyModel, ModelSpec};
use metis_metrics::f1_score;
use metis_text::{AnnotatedText, Chunker, ChunkerConfig, TokenId, Tokenizer};
use metis_vectordb::{FlatIndex, VectorIndex};

fn bench_tokenizer(c: &mut Criterion) {
    let text = "the quarterly revenue of the company grew by twelve percent ".repeat(64);
    c.bench_function("tokenizer/encode_4k_words", |b| {
        b.iter_batched(
            Tokenizer::new,
            |mut t| t.encode(&text),
            BatchSize::SmallInput,
        )
    });
}

fn bench_embedding(c: &mut Criterion) {
    let e = HashEmbed::default();
    let tokens: Vec<TokenId> = (0..512).map(|i| TokenId(i % 200)).collect();
    c.bench_function("embed/hash_512_tokens", |b| b.iter(|| e.embed(&tokens)));
}

fn bench_flat_search(c: &mut Criterion) {
    let e = HashEmbed::default();
    let mut idx = FlatIndex::new(e.dim());
    for i in 0..2_000u32 {
        let toks: Vec<TokenId> = (0..64).map(|j| TokenId(i * 7 + j)).collect();
        idx.add(metis_text::ChunkId(i), &e.embed(&toks));
    }
    let q = e.embed(&(0..32).map(TokenId).collect::<Vec<_>>());
    c.bench_function("vectordb/flat_search_2k_top10", |b| {
        b.iter(|| idx.search(&q, 10))
    });
}

fn bench_chunker(c: &mut Criterion) {
    let mut doc = AnnotatedText::new();
    doc.push_tokens(&(0..20_000u32).map(TokenId).collect::<Vec<_>>());
    let chunker = Chunker::new(ChunkerConfig::with_size(512));
    c.bench_function("text/chunk_20k_tokens", |b| b.iter(|| chunker.split(&doc)));
}

fn bench_kv_allocator(c: &mut Criterion) {
    c.bench_function("engine/kv_alloc_free_1k", |b| {
        b.iter_batched(
            || KvAllocator::new(1_000_000, 16),
            |mut a| {
                for i in 0..1_000u64 {
                    a.alloc(RequestId(i), 500).expect("fits");
                }
                for i in 0..1_000u64 {
                    a.free(RequestId(i)).expect("held");
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/serve_32_requests", |b| {
        b.iter_batched(
            || {
                let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
                let mut e = Engine::new(lat, EngineConfig::default());
                for i in 0..32u64 {
                    e.submit(LlmRequest {
                        id: RequestId(i),
                        group: GroupId(i),
                        stage: Stage::Single,
                        prompt_tokens: 2_000,
                        output_tokens: 30,
                        cached_prompt_tokens: 0,
                        arrival: i * 50_000_000,
                        priority: Priority::Standard,
                    });
                }
                e
            },
            |mut e| e.run_until_idle(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_f1(c: &mut Criterion) {
    let a: Vec<TokenId> = (0..60).map(|i| TokenId(i % 40)).collect();
    let b2: Vec<TokenId> = (10..70).map(|i| TokenId(i % 45)).collect();
    c.bench_function("metrics/f1_60_tokens", |b| b.iter(|| f1_score(&a, &b2)));
}

fn main() {
    let mut c = Criterion::default().sample_size(20);
    for bench in [
        bench_tokenizer,
        bench_embedding,
        bench_flat_search,
        bench_chunker,
        bench_kv_allocator,
        bench_engine,
        bench_f1,
    ] {
        bench(&mut c);
    }

    let mut report = new_report("micro", "substrate micro-benchmarks (wall-clock ns/iter)")
        .knob("measurement", "wall-clock")
        .knob("samples", 20);
    for (name, median_ns) in c.results() {
        let mut cell = metis_metrics::CellReport::new(name, 0);
        cell.queries = 1;
        report
            .cells
            .push(cell.metric("median_ns_per_iter", *median_ns));
    }
    emit(&report);
}

//! Allocation micro-bench for the IVF hot path.
//!
//! `IvfIndex::search_counted` ranks every centroid and walks the probed
//! lists through per-index scratch buffers (hoisted behind a mutex), so
//! the only allocation a search performs is the returned hit vector —
//! independent of corpus size and probe depth. This bench *proves* that
//! with a counting global allocator: it measures allocations per search at
//! shallow and deep probe settings and fails if the count is not the same
//! small constant, then times the search under the vendored criterion
//! harness.
//!
//! Runs in its own bench binary because a `#[global_allocator]` is
//! process-wide; the timing numbers are wall-clock and stay out of the CI
//! perf-gate baselines (like `micro`), but the allocation assertions run —
//! and gate — under CI's bench-smoke pass.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, Criterion};
use metis_bench::{bench_queries, emit, new_report, DATASET_SEED, RUN_SEED};
use metis_datasets::{AnnConfig, AnnCorpus};
use metis_metrics::CellReport;
use metis_vectordb::{IvfConfig, IvfIndex, VectorIndex};

/// [`System`] plus a relaxed allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations across `searches` queries against `index`, after a warm-up
/// search has populated the scratch buffers to steady-state capacity.
fn allocs_per_search(index: &IvfIndex, queries: &[Vec<f32>], k: usize) -> f64 {
    black_box(index.search(&queries[0], k));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for q in queries {
        black_box(index.search(q, k));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before) as f64 / queries.len() as f64
}

fn main() {
    println!("=== micro_ivf_alloc — IVF search performs no per-probe allocation ===");
    let corpus = AnnCorpus::generate(AnnConfig {
        num_queries: bench_queries(64).max(2),
        ..AnnConfig::at_scale(20_000, DATASET_SEED)
    });
    let queries: Vec<Vec<f32>> = corpus.queries.iter().map(|q| q.vector.clone()).collect();
    let k = corpus.config.k;
    let build = |nprobe: usize| {
        IvfIndex::build(
            corpus.config.dim,
            IvfConfig {
                nlist: 64,
                nprobe,
                train_iters: 8,
            },
            &corpus.items,
        )
    };

    // The allocation profile must not scale with probe depth: scratch is
    // reused, and only the returned hit vector is allocated per call.
    let shallow = build(2);
    let deep = build(32);
    let shallow_allocs = allocs_per_search(&shallow, &queries, k);
    let deep_allocs = allocs_per_search(&deep, &queries, k);
    println!("  allocations/search: nprobe=2 → {shallow_allocs:.2}, nprobe=32 → {deep_allocs:.2}");
    assert!(
        shallow_allocs <= 2.0 && deep_allocs <= 2.0,
        "IVF search must allocate at most the returned hit vector \
         (got {shallow_allocs:.2} / {deep_allocs:.2} per search)"
    );
    assert!(
        (shallow_allocs - deep_allocs).abs() < 0.5,
        "allocations per search must not scale with probe depth \
         (nprobe=2 → {shallow_allocs:.2}, nprobe=32 → {deep_allocs:.2})"
    );

    let mut c = Criterion::default().sample_size(40);
    c.bench_function("vectordb/ivf_search_20k_nprobe8", |b| {
        let idx = build(8);
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            black_box(idx.search(&queries[qi], k))
        })
    });

    let mut report = new_report(
        "micro_ivf_alloc",
        "IVF search allocation profile and wall-clock timing",
    );
    let mut cell = CellReport::new("ivf_search_20k", RUN_SEED)
        .metric("allocs_per_search_nprobe2", shallow_allocs)
        .metric("allocs_per_search_nprobe32", deep_allocs);
    for (name, median_ns) in c.results() {
        println!("  {name}: median {median_ns:.0} ns/iter");
        cell = cell.metric(format!("{name}/median_ns"), *median_ns);
    }
    report.cells.push(cell);
    emit(&report);
}

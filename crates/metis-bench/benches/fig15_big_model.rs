//! Figure 15: sensitivity to the inference LLM — serving Llama-3.1-70B on
//! two A40s instead of Mistral-7B on one.

use metis_bench::{
    adaptive_rag, base_qps, best_quality_fixed, dataset, fixed_menu, header, metis, print_rows,
    run_on, Row, RUN_SEED,
};
use metis_core::SystemKind;
use metis_datasets::{poisson_arrivals, DatasetKind};
use metis_llm::{GpuCluster, ModelSpec};

fn main() {
    header(
        "Figure 15",
        "Larger inference LLM (Llama-3.1-70B, 2xA40)",
        "METIS keeps 2.1-2.4x lower delay than AdaptiveRAG* at similar F1; \
         fixed baselines lose 7-10% F1; RAG gains only ~2% F1 from the \
         bigger model (context matters more than weights)",
    );
    for kind in [DatasetKind::Musique, DatasetKind::Qmsum] {
        // The 70B model is ~5x slower per token even on 2 GPUs; scale the rate
        // to hold utilization comparable.
        let qps = base_qps(kind) * 0.12;
        let n = 100;
        let d = dataset(kind, n);
        let model = ModelSpec::llama31_70b_awq();
        let cluster = GpuCluster::dual_a40();
        let arrivals = || poisson_arrivals(RUN_SEED ^ 0xA11, qps, n);

        let m = run_on(
            &d,
            metis(),
            arrivals(),
            RUN_SEED,
            model.clone(),
            cluster,
            false,
        );
        let a = run_on(
            &d,
            adaptive_rag(),
            arrivals(),
            RUN_SEED,
            model.clone(),
            cluster,
            false,
        );
        // Sweep fixed configs on the large model to pick its best.
        let mut sweep = Vec::new();
        for cfg in fixed_menu() {
            let r = run_on(
                &d,
                SystemKind::VllmFixed { config: cfg },
                arrivals(),
                RUN_SEED,
                model.clone(),
                cluster,
                false,
            );
            sweep.push((cfg, r));
        }
        let (qc, qr) = best_quality_fixed(&sweep);

        println!("\n--- {} (λ = {qps:.2}/s, Llama-3.1-70B) ---", kind.name());
        print_rows(&[
            Row::from_run("METIS", &m),
            Row::from_run("AdaptiveRAG*", &a),
            Row::from_run(format!("vLLM best fixed [{}]", qc.label()), qr),
        ]);
        println!(
            "  delay vs AdaptiveRAG*: {:.2}x | F1 delta vs fixed: {:+.3}",
            a.mean_delay_secs() / m.mean_delay_secs(),
            m.mean_f1() - qr.mean_f1()
        );
    }
}

//! Figure 15: sensitivity to the inference LLM — serving Llama-3.1-70B on
//! two A40s instead of Mistral-7B on one.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig15_big_model.json`.

use metis_bench::{
    adaptive_rag, base_qps, bench_queries, best_quality_fixed, dataset, emit, fixed_menu, header,
    metis, new_report, print_rows, run_on, Row, Sweep, RUN_SEED,
};
use metis_core::{RagConfig, RunResult, SystemKind};
use metis_datasets::{poisson_arrivals, DatasetKind};
use metis_llm::{GpuCluster, ModelSpec};

fn main() {
    header(
        "Figure 15",
        "Larger inference LLM (Llama-3.1-70B, 2xA40)",
        "METIS keeps 2.1-2.4x lower delay than AdaptiveRAG* at similar F1; \
         fixed baselines lose 7-10% F1; RAG gains only ~2% F1 from the \
         bigger model (context matters more than weights)",
    );
    let n = bench_queries(100);
    let mut report = new_report("fig15_big_model", "METIS vs baselines on Llama-3.1-70B")
        .knob("queries", n)
        .knob("model", "llama31_70b_awq");
    for kind in [DatasetKind::Musique, DatasetKind::Qmsum] {
        // The 70B model is ~5x slower per token even on 2 GPUs; scale the rate
        // to hold utilization comparable.
        let qps = base_qps(kind) * 0.12;
        let d = dataset(kind, n);
        let model = ModelSpec::llama31_70b_awq();
        let cluster = GpuCluster::dual_a40();

        // METIS, AdaptiveRAG*, and every fixed config, all on the sweep
        // driver (the fixed menu must run on the large model to pick its
        // own best).
        let dref = &d;
        let mut sweep: Sweep<'_, (Option<RagConfig>, RunResult)> =
            Sweep::new(format!("fig15/{}", kind.name()));
        for sys in ["metis", "adaptive_rag"] {
            let model = model.clone();
            sweep = sweep.cell_with_seed(format!("{}/{sys}", kind.name()), RUN_SEED, move |seed| {
                let system = if sys == "metis" {
                    metis()
                } else {
                    adaptive_rag()
                };
                let arrivals = poisson_arrivals(seed ^ 0xA11, qps, n);
                (
                    None,
                    run_on(dref, system, arrivals, seed, model, cluster, false),
                )
            });
        }
        for cfg in fixed_menu() {
            let model = model.clone();
            sweep = sweep.cell_with_seed(
                format!("{}/fixed/{}", kind.name(), cfg.label()),
                RUN_SEED,
                move |seed| {
                    let arrivals = poisson_arrivals(seed ^ 0xA11, qps, n);
                    (
                        Some(cfg),
                        run_on(
                            dref,
                            SystemKind::VllmFixed { config: cfg },
                            arrivals,
                            seed,
                            model,
                            cluster,
                            false,
                        ),
                    )
                },
            );
        }
        let cells = sweep.run();
        let m = &cells[0].value.1;
        let a = &cells[1].value.1;
        let fixed_sweep: Vec<(RagConfig, RunResult)> = cells[2..]
            .iter()
            .map(|c| (c.value.0.expect("fixed cell"), c.value.1.clone()))
            .collect();
        let (qc, qr) = best_quality_fixed(&fixed_sweep);

        println!("\n--- {} (λ = {qps:.2}/s, Llama-3.1-70B) ---", kind.name());
        print_rows(&[
            Row::from_run("METIS", m),
            Row::from_run("AdaptiveRAG*", a),
            Row::from_run(format!("vLLM best fixed [{}]", qc.label()), qr),
        ]);
        println!(
            "  delay vs AdaptiveRAG*: {:.2}x | F1 delta vs fixed: {:+.3}",
            a.mean_delay_secs() / m.mean_delay_secs(),
            m.mean_f1() - qr.mean_f1()
        );

        for cell in &cells[..2] {
            report.cells.push(
                cell.value
                    .1
                    .cell_report(&cell.id, cell.seed)
                    .knob("dataset", kind.name()),
            );
        }
        // Only the winning fixed config joins the report (the full menu
        // would drown the gate in near-duplicate cells).
        let best_cell = cells[2..]
            .iter()
            .find(|c| c.value.0 == Some(*qc))
            .expect("best config came from these cells");
        report.cells.push(
            qr.cell_report(format!("{}/vllm_best_fixed", kind.name()), best_cell.seed)
                .knob("dataset", kind.name())
                .knob("config", qc.label()),
        );
    }
    emit(&report);
}

//! Sim/realtime parity: the same seeded workload served twice — once by the
//! deterministic discrete-event simulator and once by the live multithreaded
//! realtime driver — must agree on what happened.
//!
//! The realtime driver runs the *same* engines on the *same* latency models;
//! only the passage of time is real (scaled wall clock, one worker thread
//! per replica). Because engine timestamps stay virtual under both drivers,
//! the two runs differ only in how wall-clock jitter shifts which iteration
//! boundary absorbs each event — so their per-stage means must track each
//! other closely. This bench is the live path's correctness oracle, and it
//! **asserts**:
//!
//! * identical completion counts (every query finishes under both drivers);
//! * queue-wait / prefill / decode stage means within 10% (plus a small
//!   absolute floor for near-zero stages) at time-scale ≥ 100×.
//!
//! Scale knobs: `METIS_BENCH_QUERIES` (default 16) and `METIS_TIME_SCALE`
//! (default 200). Emits `bench-reports/fig_realtime_parity.json`; the
//! realtime cell carries the `driver = realtime` marker, which the perf
//! gate uses to exclude it from baseline comparison.

use metis_bench::{
    base_qps, bench_queries, dataset, emit, header, metis, new_report, run_with_driver, RUN_SEED,
};
use metis_core::{DriverSpec, RunResult, StageMeans};
use metis_datasets::DatasetKind;
use metis_engine::RouterPolicy;
use metis_llm::Clock;

/// Relative tolerance on per-stage means (the acceptance bound).
const REL_TOL: f64 = 0.10;
/// Absolute slack in seconds, so near-zero stage means (an uncontended
/// queue waits ~0s) don't trip on sub-millisecond jitter.
const ABS_FLOOR_SECS: f64 = 0.25;

fn time_scale() -> f64 {
    std::env::var("METIS_TIME_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s: &f64| s.is_finite() && s > 0.0)
        .unwrap_or(200.0)
}

fn check_stage(name: &str, sim: f64, rt: f64, failures: &mut Vec<String>) {
    let allowed = (sim * REL_TOL).max(ABS_FLOOR_SECS);
    let diff = (rt - sim).abs();
    let verdict = if diff <= allowed { "ok" } else { "MISMATCH" };
    println!("  {name:<12} sim {sim:>8.3}s  realtime {rt:>8.3}s  |Δ| {diff:>7.3}s  {verdict}");
    if diff > allowed {
        failures.push(format!(
            "{name}: sim {sim:.3}s vs realtime {rt:.3}s (|Δ| {diff:.3}s > allowed {allowed:.3}s)"
        ));
    }
}

fn main() {
    let n = bench_queries(16);
    let scale = time_scale();
    let kind = DatasetKind::Musique;
    header(
        "Realtime parity",
        "one workload, two drivers: simulator vs live threads",
        "the simulator is the oracle — the live driver must reproduce its \
         stage-level behavior, not just finish the work",
    );
    let d = dataset(kind, n);
    let qps = base_qps(kind);
    println!(
        "\n--- {} ({n} queries, λ = {qps}/s, 2 replicas, time-scale {scale}×) ---",
        kind.name()
    );

    let run = |driver: DriverSpec| -> RunResult {
        run_with_driver(
            &d,
            metis(),
            qps,
            RUN_SEED,
            2,
            RouterPolicy::RoundRobin,
            driver,
        )
    };
    let sim = run(DriverSpec::Sim);
    // The parity bench measures how much wall time the realtime driver
    // spends vs virtual time; the wall read goes through the sanctioned
    // Clock abstraction.
    let wall_clock = metis_llm::WallClock::new(1.0);
    let rt = run(DriverSpec::Realtime { time_scale: scale });
    let wall = wall_clock.now() as f64 / 1e9;

    assert_eq!(
        sim.per_query.len(),
        rt.per_query.len(),
        "drivers disagree on completion count"
    );
    assert_eq!(sim.per_query.len(), n, "queries went missing");
    println!(
        "  completions  sim {:>8}   realtime {:>8}   (wall {wall:.2}s for {:.2} virtual s)",
        sim.per_query.len(),
        rt.per_query.len(),
        rt.makespan_secs
    );

    let s: StageMeans = sim.stage_breakdown();
    let r: StageMeans = rt.stage_breakdown();
    let mut failures = Vec::new();
    check_stage("queue-wait", s.queue_wait, r.queue_wait, &mut failures);
    check_stage("prefill", s.prefill, r.prefill, &mut failures);
    check_stage("decode", s.decode, r.decode, &mut failures);
    // End-to-end delay is the telescoped sum of the stages; report it too.
    check_stage(
        "delay(mean)",
        sim.latency().mean(),
        rt.latency().mean(),
        &mut failures,
    );

    let mut report = new_report("fig_realtime_parity", "sim vs realtime driver parity")
        .knob("queries", n)
        .knob("dataset", kind.name())
        .knob("time_scale", scale);
    report.cells.push(
        sim.cell_report("sim", RUN_SEED)
            .knob("dataset", kind.name()),
    );
    report.cells.push(
        rt.cell_report("realtime", RUN_SEED)
            .knob("dataset", kind.name()),
    );
    emit(&report);

    assert!(
        failures.is_empty(),
        "stage means diverged between drivers:\n  {}",
        failures.join("\n  ")
    );
    println!("  parity holds: every stage mean within max(10%, {ABS_FLOOR_SECS}s)");
}

//! Figure 16: incrementally enabling METIS's knobs on QMSUM — tune
//! num_chunks only, + synthesis_method, + intermediate_length, + joint
//! scheduling.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig16_incremental.json`.

use metis_bench::{
    base_qps, bench_queries, dataset, emit, header, new_report, run, Sweep, RUN_SEED,
};
use metis_core::{MetisOptions, PickPolicy, RagConfig, SystemKind};
use metis_datasets::DatasetKind;

fn main() {
    header(
        "Figure 16",
        "Incrementally tuning knobs (QMSUM, Mistral-7B)",
        "each knob adds quality (+5/4/3% F1 steps vs vLLM); adding joint \
         scheduling then cuts delay ~2.8x",
    );
    let kind = DatasetKind::Qmsum;
    let qps = base_qps(kind);
    let n = bench_queries(150);
    let d = dataset(kind, n);

    // The paper's Fig. 16 baseline is plain vLLM with a hand-picked static
    // configuration (the kind existing RAG systems ship with).
    let qc = RagConfig::stuff(12);

    let chunks_only = MetisOptions {
        pick: PickPolicy::Median,
        gang: false,
        tune_method: false,
        tune_ilen: false,
        ..MetisOptions::full()
    };
    let plus_method = MetisOptions {
        tune_method: true,
        ..chunks_only
    };
    let plus_ilen = MetisOptions {
        tune_ilen: true,
        ..plus_method
    };

    let dref = &d;
    let steps: [(&str, &str, SystemKind); 5] = [
        (
            "vllm_fixed",
            "vLLM fixed [stuff(k=12)]",
            SystemKind::VllmFixed { config: qc },
        ),
        (
            "tune_chunks",
            "+ tune num_chunks",
            SystemKind::Metis(chunks_only),
        ),
        (
            "tune_method",
            "+ tune synthesis_method",
            SystemKind::Metis(plus_method),
        ),
        (
            "tune_ilen",
            "+ tune intermediate_length",
            SystemKind::Metis(plus_ilen),
        ),
        (
            "joint",
            "+ joint scheduling (METIS)",
            SystemKind::Metis(MetisOptions::full()),
        ),
    ];
    let mut sweep = Sweep::new("fig16");
    for (id, _, system) in steps {
        sweep = sweep.cell_with_seed(id, RUN_SEED, move |seed| run(dref, system, qps, seed));
    }
    let cells = sweep.run();

    let base_delay = cells[0].value.mean_delay_secs();
    let base_f1 = cells[0].value.mean_f1();
    for ((_, label, _), cell) in steps.iter().zip(&cells) {
        let r = &cell.value;
        println!(
            "  {:<34} delay {:>6.2}s ({:.2}x)   F1 {:.3} ({:+.1}%)",
            label,
            r.mean_delay_secs(),
            base_delay / r.mean_delay_secs().max(1e-9),
            r.mean_f1(),
            (r.mean_f1() / base_f1.max(1e-9) - 1.0) * 100.0
        );
    }

    let mut report = new_report("fig16_incremental", "incremental knob enablement on QMSUM")
        .knob("queries", n)
        .knob("dataset", kind.name())
        .knob("baseline_config", qc.label());
    for cell in &cells {
        report.cells.push(
            cell.value
                .cell_report(&cell.id, cell.seed)
                .knob("dataset", kind.name()),
        );
    }
    emit(&report);
}

//! Figure 16: incrementally enabling METIS's knobs on QMSUM — tune
//! num_chunks only, + synthesis_method, + intermediate_length, + joint
//! scheduling.

use metis_bench::{base_qps, dataset, header, run, RUN_SEED};
use metis_core::{MetisOptions, PickPolicy, RagConfig, SystemKind};
use metis_datasets::DatasetKind;

fn main() {
    header(
        "Figure 16",
        "Incrementally tuning knobs (QMSUM, Mistral-7B)",
        "each knob adds quality (+5/4/3% F1 steps vs vLLM); adding joint \
         scheduling then cuts delay ~2.8x",
    );
    let kind = DatasetKind::Qmsum;
    let qps = base_qps(kind);
    let d = dataset(kind, 150);

    // The paper's Fig. 16 baseline is plain vLLM with a hand-picked static
    // configuration (the kind existing RAG systems ship with).
    let qc = RagConfig::stuff(12);
    let qr = run(&d, SystemKind::VllmFixed { config: qc }, qps, RUN_SEED);

    let chunks_only = MetisOptions {
        pick: PickPolicy::Median,
        gang: false,
        tune_method: false,
        tune_ilen: false,
        ..MetisOptions::full()
    };
    let plus_method = MetisOptions {
        tune_method: true,
        ..chunks_only
    };
    let plus_ilen = MetisOptions {
        tune_ilen: true,
        ..plus_method
    };
    let full = MetisOptions::full();

    let variants: Vec<(String, metis_core::RunResult)> = vec![
        (format!("vLLM fixed [{}]", qc.label()), qr.clone()),
        (
            "+ tune num_chunks".into(),
            run(&d, SystemKind::Metis(chunks_only), qps, RUN_SEED),
        ),
        (
            "+ tune synthesis_method".into(),
            run(&d, SystemKind::Metis(plus_method), qps, RUN_SEED),
        ),
        (
            "+ tune intermediate_length".into(),
            run(&d, SystemKind::Metis(plus_ilen), qps, RUN_SEED),
        ),
        (
            "+ joint scheduling (METIS)".into(),
            run(&d, SystemKind::Metis(full), qps, RUN_SEED),
        ),
    ];
    let base_delay = qr.mean_delay_secs();
    let base_f1 = qr.mean_f1();
    for (label, r) in &variants {
        println!(
            "  {:<34} delay {:>6.2}s ({:.2}x)   F1 {:.3} ({:+.1}%)",
            label,
            r.mean_delay_secs(),
            base_delay / r.mean_delay_secs().max(1e-9),
            r.mean_f1(),
            (r.mean_f1() / base_f1.max(1e-9) - 1.0) * 100.0
        );
    }
}

//! Figure 5: per-query configuration vs the Pareto boundary of fixed
//! configurations (Musique and QMSUM).
//!
//! For every query we pick, offline, the configuration with the lowest delay
//! whose quality is within 2% of the query's best achievable quality (the
//! paper's definition of the per-query best), then compare its aggregate
//! (delay, F1) against every fixed configuration.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig05_perquery.json`.

use metis_bench::{
    bench_queries, dataset, emit, header, isolated_delay, new_report, pareto_front, Sweep,
};
use metis_core::synthesis::SynthesisInputs;
use metis_core::{plan_synthesis, RagConfig};
use metis_datasets::{Dataset, DatasetKind};
use metis_llm::{GenModelConfig, GenerationModel, GpuCluster, ModelSpec};
use metis_metrics::{f1_score, BenchReport, CellReport};

const SEEDS: u64 = 16;

fn grid() -> Vec<RagConfig> {
    let mut g = Vec::new();
    for k in [1u32, 2, 4, 6, 8, 12, 16, 24, 35] {
        g.push(RagConfig::map_rerank(k));
        g.push(RagConfig::stuff(k));
        for l in [20, 60, 120] {
            g.push(RagConfig::map_reduce(k, l));
        }
    }
    g
}

/// Evaluates (delay, f1) of one config on one query, seed-averaged.
fn eval(d: &Dataset, qi: usize, gen: &GenerationModel, cfg: RagConfig, seed: u64) -> (f64, f64) {
    let q = &d.queries[qi];
    let retrieved = d.db.retrieve(&q.tokens, cfg.effective_chunks(d.db.len()));
    let inputs = SynthesisInputs {
        gen,
        truth: &q.truth,
        query_tokens: &q.tokens,
        boilerplate: &d.boilerplate,
    };
    let gold = q.gold_answer();
    let mut f1 = 0.0;
    let mut plan = None;
    for s in 0..SEEDS {
        let p = plan_synthesis(
            &inputs,
            &cfg,
            &retrieved,
            seed ^ s.wrapping_mul(0x9E37_79B9),
        );
        f1 += f1_score(&p.answer, &gold);
        plan = Some(p);
    }
    (
        isolated_delay(
            &plan.expect("seeded"),
            ModelSpec::mistral_7b_awq(),
            GpuCluster::single_a40(),
        ),
        f1 / SEEDS as f64,
    )
}

fn run_dataset(kind: DatasetKind, report: &mut BenchReport) {
    let n = bench_queries(40);
    let d = dataset(kind, n);
    let gen = GenerationModel::new(&ModelSpec::mistral_7b_awq(), GenModelConfig::default());
    let grid = grid();

    // Per-query × per-config evaluation: one sweep cell per query.
    let mut sweep: Sweep<'_, Vec<(f64, f64)>> = Sweep::new(format!("fig05/{}", kind.name()));
    for qi in 0..n {
        let d = &d;
        let gen = &gen;
        let grid = &grid;
        sweep = sweep.cell(format!("{}/q{qi}", kind.name()), move |seed| {
            grid.iter()
                .map(|&cfg| eval(d, qi, gen, cfg, seed))
                .collect()
        });
    }
    let rows = sweep.run();

    // Per-query best: lowest delay within 2% of the best achievable F1.
    let mut pq_delay = 0.0;
    let mut pq_f1 = 0.0;
    for cell in &rows {
        let evals = &cell.value;
        let best_f1 = evals.iter().map(|e| e.1).fold(0.0, f64::max);
        let (d, f) = evals
            .iter()
            .filter(|e| e.1 >= best_f1 - 0.02)
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .copied()
            .expect("non-empty grid");
        pq_delay += d;
        pq_f1 += f;
    }
    pq_delay /= n as f64;
    pq_f1 /= n as f64;

    // Fixed configurations aggregated over all queries.
    let fixed: Vec<(f64, f64)> = (0..grid.len())
        .map(|ci| {
            let (mut dsum, mut fsum) = (0.0, 0.0);
            for cell in &rows {
                dsum += cell.value[ci].0;
                fsum += cell.value[ci].1;
            }
            (dsum / n as f64, fsum / n as f64)
        })
        .collect();
    let front = pareto_front(&fixed);

    println!("\n--- {} ({} queries) ---", kind.name(), n);
    println!(
        "  per-query configuration: delay {:>5.2}s  F1 {:.3}",
        pq_delay, pq_f1
    );
    println!("  Pareto frontier of fixed configurations:");
    let mut front_sorted: Vec<usize> = front.clone();
    front_sorted.sort_by(|&a, &b| fixed[a].0.total_cmp(&fixed[b].0));
    for &i in &front_sorted {
        println!(
            "    {:<24} delay {:>5.2}s  F1 {:.3}",
            grid[i].label(),
            fixed[i].0,
            fixed[i].1
        );
    }
    // The paper's two claims.
    let closest_quality = fixed
        .iter()
        .filter(|e| e.1 >= pq_f1 - 0.02)
        .map(|e| e.0)
        .fold(f64::INFINITY, f64::min);
    let best_within_delay = fixed
        .iter()
        .filter(|e| e.0 <= pq_delay * 1.05)
        .map(|e| e.1)
        .fold(0.0, f64::max);
    if closest_quality.is_finite() {
        println!(
            "  vs fixed of comparable quality: {:.2}x delay saving",
            closest_quality / pq_delay
        );
    } else {
        println!("  no fixed configuration reaches per-query quality - 2%");
    }
    println!(
        "  vs fixed of comparable delay: +{:.1}% F1",
        (pq_f1 / best_within_delay.max(1e-9) - 1.0) * 100.0
    );

    // Report: the per-query aggregate plus the Pareto frontier points.
    let mut pq = CellReport::new(format!("{}/per_query", kind.name()), rows[0].seed);
    pq.queries = n as u64;
    pq.f1 = pq_f1;
    report.cells.push(
        pq.knob("dataset", kind.name())
            .metric("isolated_delay_secs", pq_delay),
    );
    for &i in &front_sorted {
        let mut c = CellReport::new(
            format!("{}/frontier/{}", kind.name(), grid[i].label()),
            rows[0].seed,
        );
        c.queries = n as u64;
        c.f1 = fixed[i].1;
        report.cells.push(
            c.knob("dataset", kind.name())
                .knob("config", grid[i].label())
                .metric("isolated_delay_secs", fixed[i].0),
        );
    }
}

fn main() {
    header(
        "Figure 5",
        "Per-query configuration vs every fixed configuration",
        "per-query choice achieves up to 3x delay saving vs quality-closest \
         static configs; every static config of comparable delay loses >=10% \
         quality",
    );
    let mut report = new_report(
        "fig05_perquery",
        "per-query configuration vs the fixed-config Pareto frontier",
    )
    .knob("queries", bench_queries(40))
    .knob("gen_seeds", SEEDS);
    run_dataset(DatasetKind::Musique, &mut report);
    run_dataset(DatasetKind::Qmsum, &mut report);
    emit(&report);
}

//! Figure 4: the impact of each configuration knob on the quality-delay
//! tradeoff for three Musique-like queries of increasing complexity
//! (Q1 green / Q2 blue / Q3 red in the paper).
//!
//! Quality per point is averaged over generation seeds; delay is the
//! isolated (contention-free) execution of the plan on one A40.
//!
//! Scale knob: `METIS_BENCH_QUERIES` caps the seed-averaging count (the
//! probe dataset stays at 60 queries — the Q1/Q2/Q3 exemplars must exist).
//! Emits `bench-reports/fig04_knobs.json`.

use metis_bench::{bench_queries, dataset, emit, header, isolated_delay, new_report, Sweep};
use metis_core::synthesis::SynthesisInputs;
use metis_core::{plan_synthesis, RagConfig, SynthesisMethod};
use metis_datasets::{Complexity, Dataset, DatasetKind, QuerySpec};
use metis_llm::{GenModelConfig, GenerationModel, GpuCluster, ModelSpec};
use metis_metrics::f1_score;

fn eval(
    d: &Dataset,
    q: &QuerySpec,
    gen: &GenerationModel,
    cfg: RagConfig,
    seeds: u64,
    seed_base: u64,
) -> (f64, f64) {
    let retrieved = d.db.retrieve(&q.tokens, cfg.effective_chunks(d.db.len()));
    let inputs = SynthesisInputs {
        gen,
        truth: &q.truth,
        query_tokens: &q.tokens,
        boilerplate: &d.boilerplate,
    };
    let gold = q.gold_answer();
    let mut f1 = 0.0;
    let mut plan = None;
    for s in 0..seeds {
        let p = plan_synthesis(
            &inputs,
            &cfg,
            &retrieved,
            seed_base ^ s.wrapping_mul(0x5851_F42D),
        );
        f1 += f1_score(&p.answer, &gold);
        plan = Some(p);
    }
    let delay = isolated_delay(
        &plan.expect("at least one seed"),
        ModelSpec::mistral_7b_awq(),
        GpuCluster::single_a40(),
    );
    (delay, f1 / seeds as f64)
}

fn main() {
    let d = dataset(DatasetKind::Musique, 60);
    let seeds = bench_queries(60) as u64;
    // Q1: the simplest joint query (2 pieces, low complexity);
    // Q2: a 3-piece reasoning query; Q3: the most complex (4 pieces, high).
    let q1 = d
        .queries
        .iter()
        .find(|q| q.profile.pieces == 1 && q.profile.complexity == Complexity::Low)
        .expect("a simple query exists");
    let q2 = d
        .queries
        .iter()
        .find(|q| q.profile.pieces == 3 && q.profile.joint)
        .expect("a medium query exists");
    let q3 = d
        .queries
        .iter()
        .find(|q| q.profile.pieces == 4 && q.profile.complexity == Complexity::High)
        .expect("a complex query exists");
    let gen = GenerationModel::new(&ModelSpec::mistral_7b_awq(), GenModelConfig::default());
    let queries = [("Q1", q1), ("Q2", q2), ("Q3", q3)];

    // Every (panel, query, knob) point is one sweep cell; the tables below
    // read the cells back in their panel layouts.
    let ks = [1u32, 2, 4, 8, 12, 16, 24, 35];
    let ilens = [1u32, 5, 10, 20, 40, 70, 100];
    let mut sweep = Sweep::new("fig04");
    let mut plan: Vec<(String, RagConfig)> = Vec::new();
    for (name, q) in queries {
        for m in SynthesisMethod::all() {
            let cfg = RagConfig {
                num_chunks: 3 * q.profile.pieces,
                synthesis: m,
                intermediate_length: 60,
            };
            plan.push((format!("4a/{name}/{}", m.name()), cfg));
        }
        for k in ks {
            plan.push((format!("4b/{name}/k={k}"), RagConfig::stuff(k)));
        }
        for l in ilens {
            plan.push((
                format!("4c/{name}/ilen={l}"),
                RagConfig::map_reduce(3 * q.profile.pieces, l),
            ));
        }
    }
    for (id, cfg) in plan {
        let d = &d;
        let gen = &gen;
        let q: &QuerySpec = match &id[3..5] {
            "Q1" => q1,
            "Q2" => q2,
            _ => q3,
        };
        sweep = sweep.cell(id, move |seed| eval(d, q, gen, cfg, seeds, seed));
    }
    let cells = sweep.run();
    let find = |id: String| {
        let c = cells.iter().find(|c| c.id == id).expect("cell computed");
        c.value
    };

    header(
        "Figure 4a",
        "Synthesis-method knob (k = 3x pieces per query, ilen = 60)",
        "optimal method differs per query: simple queries plateau (rerank \
         suffices w/o joint need; here Q1 is joint so stuff suffices), \
         Q2 gains ~35% from joint reading, Q3 gains ~30% more from map_reduce",
    );
    println!(
        "  {:<10} {:>22} {:>22} {:>22}",
        "query", "map_rerank (d, F1)", "stuff (d, F1)", "map_reduce (d, F1)"
    );
    for (name, _) in queries {
        let cell = |m: SynthesisMethod| {
            let (delay, f1) = find(format!("4a/{name}/{}", m.name()));
            format!("{delay:>7.2}s {f1:>6.3}")
        };
        let methods = SynthesisMethod::all();
        println!(
            "  {:<10} {:>22} {:>22} {:>22}",
            name,
            cell(methods[0]),
            cell(methods[1]),
            cell(methods[2])
        );
    }

    header(
        "Figure 4b",
        "num_chunks knob (stuff, k = 1..35)",
        "quality rises with chunks up to the query's need, then falls \
         (lost-in-the-middle / dilution) while delay keeps inflating \
         (up to 3x delay, up to 20% quality drop)",
    );
    print!("  {:<10}", "query");
    for k in ks {
        print!(" {:>14}", format!("k={k}"));
    }
    println!();
    for (name, _) in queries {
        print!("  {:<10}", name);
        for k in ks {
            let (delay, f1) = find(format!("4b/{name}/k={k}"));
            print!(" {:>7.2}s {:>5.3}", delay, f1);
        }
        println!();
    }

    header(
        "Figure 4c",
        "intermediate_length knob (map_reduce, k = 3x pieces, ilen = 1..100)",
        "simple queries need only short summaries (10-20 words); complex \
         queries need 70-100 to carry all the evidence",
    );
    print!("  {:<10}", "query");
    for l in ilens {
        print!(" {:>14}", format!("ilen={l}"));
    }
    println!();
    for (name, _) in queries {
        print!("  {:<10}", name);
        for l in ilens {
            let (delay, f1) = find(format!("4c/{name}/ilen={l}"));
            print!(" {:>7.2}s {:>5.3}", delay, f1);
        }
        println!();
    }

    let mut report = new_report(
        "fig04_knobs",
        "per-knob quality-delay tradeoff on three probe queries",
    )
    .knob("dataset", "musique")
    .knob("gen_seeds", seeds);
    for cell in &cells {
        let (delay, f1) = cell.value;
        let mut c = metis_metrics::CellReport::new(&cell.id, cell.seed);
        c.queries = 1;
        c.f1 = f1;
        report.cells.push(c.metric("isolated_delay_secs", delay));
    }
    emit(&report);
}

//! Figure 17: swapping the profiler LLM for a smaller open-source model
//! (Llama-3.1-70B instead of GPT-4o).
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig17_small_profiler.json`.

use metis_bench::{
    adaptive_rag, base_qps, bench_queries, best_quality_fixed, closest_delay_fixed, dataset, emit,
    fixed_menu, header, new_report, print_rows, run, sweep_fixed, Row, Sweep, RUN_SEED,
};
use metis_core::{MetisOptions, SystemKind};
use metis_datasets::DatasetKind;
use metis_profiler::ProfilerKind;

fn main() {
    header(
        "Figure 17",
        "Smaller open-source profiler (Llama-3.1-70B)",
        "METIS stays 1.4-2.1x faster than AdaptiveRAG* at similar F1, and \
         10-14% higher F1 than fixed configs of similar delay",
    );
    let n = bench_queries(150);
    let mut report = new_report(
        "fig17_small_profiler",
        "METIS with a Llama-3.1-70B profiler vs baselines",
    )
    .knob("queries", n)
    .knob("profiler", "llama70b");
    for kind in [DatasetKind::FinSec, DatasetKind::Squad] {
        let qps = base_qps(kind);
        let d = dataset(kind, n);
        let mut opts = MetisOptions::full();
        opts.profiler = ProfilerKind::Llama70b;
        let dref = &d;
        let cells = Sweep::new(format!("fig17/{}", kind.name()))
            .cell_with_seed(
                format!("{}/metis_llama70b", kind.name()),
                RUN_SEED,
                move |seed| run(dref, SystemKind::Metis(opts), qps, seed),
            )
            .cell_with_seed(
                format!("{}/adaptive_rag", kind.name()),
                RUN_SEED,
                move |seed| run(dref, adaptive_rag(), qps, seed),
            )
            .run();
        let m = &cells[0].value;
        let a = &cells[1].value;
        let sweep = sweep_fixed(&d, &fixed_menu(), qps, RUN_SEED, false);
        let (qc, qr) = best_quality_fixed(&sweep);
        let (dc, dr) = closest_delay_fixed(&sweep, m.mean_delay_secs());

        println!(
            "\n--- {} (λ = {qps}/s, Llama-70B profiler) ---",
            kind.name()
        );
        print_rows(&[
            Row::from_run("METIS (Llama-70B profiler)", m),
            Row::from_run("AdaptiveRAG* (GPT-4o profiler)", a),
            Row::from_run(format!("vLLM best fixed [{}]", qc.label()), qr),
            Row::from_run(format!("vLLM similar delay [{}]", dc.label()), dr),
        ]);
        println!(
            "  delay vs AdaptiveRAG*: {:.2}x | F1 vs similar-delay fixed: {:+.1}%",
            a.mean_delay_secs() / m.mean_delay_secs(),
            (m.mean_f1() / dr.mean_f1().max(1e-9) - 1.0) * 100.0
        );

        for cell in &cells {
            report.cells.push(
                cell.value
                    .cell_report(&cell.id, cell.seed)
                    .knob("dataset", kind.name()),
            );
        }
        report.cells.push(
            dr.cell_report(format!("{}/vllm_similar_delay", kind.name()), RUN_SEED)
                .knob("dataset", kind.name())
                .knob("config", dc.label()),
        );
    }
    emit(&report);
}

//! Figure 13: dollar cost vs quality — METIS (Mistral-7B + GPT-4o profiler)
//! against bigger serving models with fixed configurations.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig13_cost.json`.

use metis_bench::{
    base_qps, bench_queries, best_quality_fixed, dataset, emit, fixed_menu, header, metis,
    new_report, run, run_on, sweep_fixed, Sweep, RUN_SEED,
};
use metis_core::{RunResult, SystemKind};
use metis_datasets::{poisson_arrivals, DatasetKind};
use metis_llm::{GpuCluster, ModelSpec};
use metis_metrics::{CostModel, RunCost};

fn main() {
    header(
        "Figure 13",
        "Dollar cost per query vs F1 with increasing model size",
        "fixed-config Llama-70B costs 2.38x more at ~6.5% lower F1; \
         fixed-config GPT-4o costs 6.8x more and still trails METIS's F1",
    );
    let n = bench_queries(100);
    let mut report = new_report(
        "fig13_cost",
        "dollar cost per query vs F1 across serving setups",
    )
    .knob("queries", n);
    for kind in [DatasetKind::Musique, DatasetKind::Qmsum] {
        let qps = base_qps(kind);
        let d = dataset(kind, n);

        let sweep = sweep_fixed(&d, &fixed_menu(), qps, RUN_SEED, false);
        let (qc, _) = best_quality_fixed(&sweep);
        let config = *qc;
        let dref = &d;
        let cells = Sweep::new(format!("fig13/{}", kind.name()))
            // METIS on Mistral-7B, one A40 (+ GPT-4o profiler API spend).
            .cell_with_seed(format!("{}/metis_7b", kind.name()), RUN_SEED, move |seed| {
                run(dref, metis(), qps, seed)
            })
            // Llama-3.1-70B on two A40s, best fixed config (rate scaled down
            // to its slower service).
            .cell_with_seed(format!("{}/vllm_70b", kind.name()), RUN_SEED, move |seed| {
                let arrivals = poisson_arrivals(seed ^ 0xA11, qps * 0.4, n);
                run_on(
                    dref,
                    SystemKind::VllmFixed { config },
                    arrivals,
                    seed,
                    ModelSpec::llama31_70b_awq(),
                    GpuCluster::dual_a40(),
                    false,
                )
            })
            // GPT-4o over the API with the same fixed config.
            .cell_with_seed(
                format!("{}/api_gpt4o", kind.name()),
                RUN_SEED,
                move |seed| {
                    let arrivals = poisson_arrivals(seed ^ 0xA11, qps, n);
                    run_on(
                        dref,
                        SystemKind::VllmFixed { config },
                        arrivals,
                        seed,
                        ModelSpec::gpt4o(),
                        GpuCluster::single_a40(),
                        false,
                    )
                },
            )
            .run();
        let by = |suffix: &str| -> &RunResult {
            &cells
                .iter()
                .find(|c| c.id.ends_with(suffix))
                .expect("cell")
                .value
        };
        let (m, l, g) = (by("/metis_7b"), by("/vllm_70b"), by("/api_gpt4o"));

        let mut metis_cost = RunCost::default();
        // GPU provisioned for the whole makespan.
        metis_cost.add_gpu_secs(m.makespan_secs);
        metis_cost.add_api(m.api_cost_usd);
        let metis_usd = metis_cost.usd_per_query(&CostModel::a40(1), n);
        let mut llama_cost = RunCost::default();
        llama_cost.add_gpu_secs(l.makespan_secs);
        let llama_usd = llama_cost.usd_per_query(&CostModel::a40(2), n);
        let gpt_usd = g.api_cost_usd / n as f64;

        println!("\n--- {} (fixed = {}) ---", kind.name(), qc.label());
        println!("  {:<44} {:>11} {:>7}", "serving setup", "$/query", "F1");
        println!(
            "  {:<44} {:>11.5} {:>7.3}",
            "METIS: Mistral-7B AWQ, 1xA40 + profiler",
            metis_usd,
            m.mean_f1()
        );
        println!(
            "  {:<44} {:>11.5} {:>7.3}   ({:.2}x METIS cost)",
            "vLLM fixed: Llama-3.1-70B AWQ, 2xA40",
            llama_usd,
            l.mean_f1(),
            llama_usd / metis_usd
        );
        println!(
            "  {:<44} {:>11.5} {:>7.3}   ({:.2}x METIS cost)",
            "API fixed: GPT-4o",
            gpt_usd,
            g.mean_f1(),
            gpt_usd / metis_usd
        );

        for (cell, usd) in cells.iter().zip([metis_usd, llama_usd, gpt_usd]) {
            report.cells.push(
                cell.value
                    .cell_report(&cell.id, cell.seed)
                    .knob("dataset", kind.name())
                    .knob("config", qc.label())
                    .metric("usd_per_query", usd),
            );
        }
    }
    emit(&report);
}

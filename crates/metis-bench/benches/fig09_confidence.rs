//! Figure 9: the profiler's confidence score separates good profiles from
//! bad ones, justifying the 90% threshold of §5.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig09_confidence.json`.

use metis_bench::{bench_queries, dataset, emit, header, new_report, Sweep};
use metis_datasets::DatasetKind;
use metis_profiler::{LlmProfiler, ProfilerKind};

/// (hi_good, hi_bad, lo_good, lo_bad) confusion counts for one dataset.
type Counts = (u32, u32, u32, u32);

fn main() {
    header(
        "Figure 9",
        "Profiler confidence threshold (pooled over all four datasets)",
        ">93% of profiles are above the 90% threshold; of those >96% are \
         good; of the ~7% below threshold, 85-90% are bad",
    );
    let n = bench_queries(150);
    let mut sweep: Sweep<'_, Counts> = Sweep::new("fig09");
    for kind in DatasetKind::all() {
        sweep = sweep.cell(kind.name(), move |seed| {
            let d = dataset(kind, n);
            let mut p = LlmProfiler::new(ProfilerKind::Gpt4o);
            let md = d.db.metadata().clone();
            let mut counts: Counts = (0, 0, 0, 0);
            for q in &d.queries {
                let out = p.profile(q, &md, seed);
                let good = out.estimate.is_good(&q.profile);
                match (out.estimate.confidence >= 0.90, good) {
                    (true, true) => counts.0 += 1,
                    (true, false) => counts.1 += 1,
                    (false, true) => counts.2 += 1,
                    (false, false) => counts.3 += 1,
                }
            }
            counts
        });
    }
    let cells = sweep.run();
    let (mut hi_good, mut hi_bad, mut lo_good, mut lo_bad) = (0u32, 0u32, 0u32, 0u32);
    for c in &cells {
        hi_good += c.value.0;
        hi_bad += c.value.1;
        lo_good += c.value.2;
        lo_bad += c.value.3;
    }
    let total = hi_good + hi_bad + lo_good + lo_bad;
    let hi = hi_good + hi_bad;
    let lo = lo_good + lo_bad;
    println!("  profiles: {total} total");
    println!(
        "  above 90% threshold: {hi} ({:.1}%) — good {:.1}%, bad {:.1}%",
        100.0 * f64::from(hi) / f64::from(total),
        100.0 * f64::from(hi_good) / f64::from(hi.max(1)),
        100.0 * f64::from(hi_bad) / f64::from(hi.max(1)),
    );
    println!(
        "  below 90% threshold: {lo} ({:.1}%) — bad {:.1}%, good {:.1}%",
        100.0 * f64::from(lo) / f64::from(total),
        100.0 * f64::from(lo_bad) / f64::from(lo.max(1)),
        100.0 * f64::from(lo_good) / f64::from(lo.max(1)),
    );

    let mut report = new_report(
        "fig09_confidence",
        "profiler confidence separates good profiles from bad",
    )
    .knob("queries_per_dataset", n)
    .knob("threshold", "0.90");
    for c in &cells {
        let (hg, hb, lg, lb) = c.value;
        let mut cr = metis_metrics::CellReport::new(&c.id, c.seed);
        cr.queries = u64::from(hg + hb + lg + lb);
        report.cells.push(
            cr.knob("dataset", &c.id)
                .metric("hi_good", f64::from(hg))
                .metric("hi_bad", f64::from(hb))
                .metric("lo_good", f64::from(lg))
                .metric("lo_bad", f64::from(lb)),
        );
    }
    emit(&report);
}

//! Figure 9: the profiler's confidence score separates good profiles from
//! bad ones, justifying the 90% threshold of §5.

use metis_bench::{dataset, header};
use metis_datasets::DatasetKind;
use metis_profiler::{LlmProfiler, ProfilerKind};

fn main() {
    header(
        "Figure 9",
        "Profiler confidence threshold (pooled over all four datasets)",
        ">93% of profiles are above the 90% threshold; of those >96% are \
         good; of the ~7% below threshold, 85-90% are bad",
    );
    let mut hi_good = 0u32;
    let mut hi_bad = 0u32;
    let mut lo_good = 0u32;
    let mut lo_bad = 0u32;
    for kind in DatasetKind::all() {
        let d = dataset(kind, 150);
        let mut p = LlmProfiler::new(ProfilerKind::Gpt4o);
        let md = d.db.metadata().clone();
        for q in &d.queries {
            let out = p.profile(q, &md, 7);
            let good = out.estimate.is_good(&q.profile);
            match (out.estimate.confidence >= 0.90, good) {
                (true, true) => hi_good += 1,
                (true, false) => hi_bad += 1,
                (false, true) => lo_good += 1,
                (false, false) => lo_bad += 1,
            }
        }
    }
    let total = hi_good + hi_bad + lo_good + lo_bad;
    let hi = hi_good + hi_bad;
    let lo = lo_good + lo_bad;
    println!("  profiles: {total} total");
    println!(
        "  above 90% threshold: {hi} ({:.1}%) — good {:.1}%, bad {:.1}%",
        100.0 * f64::from(hi) / f64::from(total),
        100.0 * f64::from(hi_good) / f64::from(hi.max(1)),
        100.0 * f64::from(hi_bad) / f64::from(hi.max(1)),
    );
    println!(
        "  below 90% threshold: {lo} ({:.1}%) — bad {:.1}%, good {:.1}%",
        100.0 * f64::from(lo) / f64::from(total),
        100.0 * f64::from(lo_bad) / f64::from(lo.max(1)),
        100.0 * f64::from(lo_good) / f64::from(lo.max(1)),
    );
}

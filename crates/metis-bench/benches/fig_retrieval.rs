//! Retrieval-layer ablation: exact flat scan vs IVF `{nlist, nprobe}`
//! across offered load.
//!
//! The retrieval executor charges each query the *measured* work of its
//! index search (vectors scored, centroids ranked, lists probed), so index
//! choice becomes a real latency–recall knob: IVF probes a fraction of the
//! corpus and pays a small recall tax that the end-to-end F1 inherits.
//! This experiment sweeps flat vs several IVF shapes × two arrival rates,
//! reporting retrieval p50/p99, chunk recall@k against the flat index,
//! ground-truth fact recall, end-to-end F1, and mean delay.
//!
//! Scale knob: `METIS_BENCH_QUERIES` (CI smoke runs set it low).

use std::sync::Mutex;

use metis_bench::{base_qps, bench_queries, header, metis, DATASET_SEED, RUN_SEED};
use metis_core::{RunConfig, Runner};
use metis_datasets::{build_dataset_with_index, poisson_arrivals, Dataset, DatasetKind};
use metis_vectordb::IndexSpec;

const IVF_POINTS: [(usize, usize); 3] = [(32, 4), (32, 16), (64, 8)];
const LOAD_MULTS: [f64; 2] = [1.0, 2.0];
/// Depth at which chunk recall against the flat index is measured.
const RECALL_K: usize = 8;

/// Mean fraction of flat's top-`RECALL_K` chunk ids the index reproduces.
fn chunk_recall_vs_flat(d: &Dataset, flat: &Dataset) -> f64 {
    let mut sum = 0.0;
    for q in &d.queries {
        let gold: std::collections::HashSet<_> = flat
            .db
            .retrieve(&q.tokens, RECALL_K)
            .iter()
            .map(|r| r.hit.chunk)
            .collect();
        let hit =
            d.db.retrieve(&q.tokens, RECALL_K)
                .iter()
                .filter(|r| gold.contains(&r.hit.chunk))
                .count();
        sum += hit as f64 / gold.len().max(1) as f64;
    }
    sum / d.queries.len().max(1) as f64
}

fn main() {
    header(
        "fig_retrieval",
        "flat vs IVF retrieval: latency-recall tradeoff on the serving path",
        "IVF cuts retrieval p50/p99 by the probe fraction at a small \
         recall@k tax; end-to-end F1 tracks fact recall, and the tradeoff \
         is visible at every load level",
    );
    let n = bench_queries(96);
    let kind = DatasetKind::Musique;
    let base = base_qps(kind);
    let flat = build_dataset_with_index(kind, n, DATASET_SEED, IndexSpec::Flat);
    println!(
        "\n--- {} ({} queries, {} chunks, base λ = {base}/s) ---",
        kind.name(),
        n,
        flat.db.len()
    );
    println!(
        "  {:<8} {:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "load", "index", "ret p50", "ret p99", "chunk@8", "fact-rec", "delay(s)", "F1"
    );

    let specs: Vec<IndexSpec> = std::iter::once(IndexSpec::Flat)
        .chain(
            IVF_POINTS
                .iter()
                .map(|&(nlist, nprobe)| IndexSpec::ivf(nlist, nprobe)),
        )
        .collect();
    type Cell = (usize, usize, f64, f64, f64, f64, f64); // spec, load, p50, p99, delay, f1, fact
    let cells: Mutex<Vec<Cell>> = Mutex::new(Vec::new());
    let recalls: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (si, &spec) in specs.iter().enumerate() {
            let flat = &flat;
            let cells = &cells;
            let recalls = &recalls;
            s.spawn(move || {
                // The flat row reuses the already-built baseline (recall
                // against itself is 1 by definition); only IVF shapes need
                // their own index build.
                let built;
                let d: &Dataset = if spec == IndexSpec::Flat {
                    flat
                } else {
                    built = build_dataset_with_index(kind, n, DATASET_SEED, spec);
                    &built
                };
                let recall = if spec == IndexSpec::Flat {
                    1.0
                } else {
                    chunk_recall_vs_flat(d, flat)
                };
                recalls.lock().expect("poisoned").push((si, recall));
                for (li, &mult) in LOAD_MULTS.iter().enumerate() {
                    let arrivals = poisson_arrivals(RUN_SEED ^ 0xA11, base * mult, n);
                    let mut cfg = RunConfig::standard(metis(), arrivals, RUN_SEED);
                    cfg.index = spec;
                    let r = Runner::new(d, cfg).run();
                    let ret = r.retrieval();
                    cells.lock().expect("poisoned").push((
                        si,
                        li,
                        ret.p50(),
                        ret.p99(),
                        r.mean_delay_secs(),
                        r.mean_f1(),
                        r.mean_retrieval_recall(),
                    ));
                }
            });
        }
    });
    let cells = cells.into_inner().expect("poisoned");
    let recalls = recalls.into_inner().expect("poisoned");
    let recall_of = |si: usize| {
        recalls
            .iter()
            .find(|(i, _)| *i == si)
            .map(|(_, r)| *r)
            .expect("recall computed")
    };
    for (li, &mult) in LOAD_MULTS.iter().enumerate() {
        for (si, spec) in specs.iter().enumerate() {
            let &(.., p50, p99, delay, f1, fact) = cells
                .iter()
                .find(|(i, l, ..)| (*i, *l) == (si, li))
                .expect("cell computed");
            println!(
                "  {:<8} {:<24} {:>8.2}ms {:>8.2}ms {:>9.3} {:>9.3} {:>9.2} {:>7.3}",
                format!("{mult:.0}x"),
                spec.label(),
                p50 * 1e3,
                p99 * 1e3,
                recall_of(si),
                fact,
                delay,
                f1,
            );
        }
    }
}

//! Retrieval-layer ablation: exact flat scan vs IVF `{nlist, nprobe}`
//! across offered load.
//!
//! The retrieval executor charges each query the *measured* work of its
//! index search (vectors scored, centroids ranked, lists probed), so index
//! choice becomes a real latency–recall knob: IVF probes a fraction of the
//! corpus and pays a small recall tax that the end-to-end F1 inherits.
//! This experiment sweeps flat vs several IVF shapes × two arrival rates,
//! reporting retrieval p50/p99, chunk recall@k against the flat index,
//! ground-truth fact recall, end-to-end F1, and mean delay.
//!
//! Scale knob: `METIS_BENCH_QUERIES` (CI smoke runs set it low). Emits
//! `bench-reports/fig_retrieval.json` — one of the three reports the CI
//! perf gate diffs against `baselines/`.

use metis_bench::{
    base_qps, bench_queries, emit, header, metis, new_report, Sweep, DATASET_SEED, RUN_SEED,
};
use metis_core::{RunConfig, RunResult, Runner};
use metis_datasets::{build_dataset_with_index, poisson_arrivals, Dataset, DatasetKind};
use metis_vectordb::IndexSpec;

const IVF_POINTS: [(usize, usize); 3] = [(32, 4), (32, 16), (64, 8)];
const LOAD_MULTS: [f64; 2] = [1.0, 2.0];
/// Depth at which chunk recall against the flat index is measured.
const RECALL_K: usize = 8;

/// Mean fraction of flat's top-`RECALL_K` chunk ids the index reproduces.
fn chunk_recall_vs_flat(d: &Dataset, flat: &Dataset) -> f64 {
    let mut sum = 0.0;
    for q in &d.queries {
        let gold: std::collections::HashSet<_> = flat
            .db
            .retrieve(&q.tokens, RECALL_K)
            .iter()
            .map(|r| r.hit.chunk)
            .collect();
        let hit =
            d.db.retrieve(&q.tokens, RECALL_K)
                .iter()
                .filter(|r| gold.contains(&r.hit.chunk))
                .count();
        sum += hit as f64 / gold.len().max(1) as f64;
    }
    sum / d.queries.len().max(1) as f64
}

fn main() {
    header(
        "fig_retrieval",
        "flat vs IVF retrieval: latency-recall tradeoff on the serving path",
        "IVF cuts retrieval p50/p99 by the probe fraction at a small \
         recall@k tax; end-to-end F1 tracks fact recall, and the tradeoff \
         is visible at every load level",
    );
    let n = bench_queries(96);
    let kind = DatasetKind::Musique;
    let base = base_qps(kind);
    let flat = build_dataset_with_index(kind, n, DATASET_SEED, IndexSpec::Flat);
    println!(
        "\n--- {} ({} queries, {} chunks, base λ = {base}/s) ---",
        kind.name(),
        n,
        flat.db.len()
    );
    println!(
        "  {:<8} {:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "load", "index", "ret p50", "ret p99", "chunk@8", "fact-rec", "delay(s)", "F1"
    );

    let specs: Vec<IndexSpec> = std::iter::once(IndexSpec::Flat)
        .chain(
            IVF_POINTS
                .iter()
                .map(|&(nlist, nprobe)| IndexSpec::ivf(nlist, nprobe)),
        )
        .collect();
    // One cell per index spec: it builds its index once, measures recall
    // against the flat baseline, then serves every load level — the runs
    // inside a cell share the expensive index build.
    type CellOut = (f64, Vec<(f64, RunResult)>); // (chunk recall, per-load runs)
    let mut sweep: Sweep<'_, CellOut> = Sweep::new("fig_retrieval");
    for &spec in &specs {
        let flat = &flat;
        sweep = sweep.cell_with_seed(spec.label(), RUN_SEED, move |seed| {
            // The flat row reuses the already-built baseline (recall
            // against itself is 1 by definition); only IVF shapes need
            // their own index build.
            let built;
            let d: &Dataset = if spec == IndexSpec::Flat {
                flat
            } else {
                built = build_dataset_with_index(kind, n, DATASET_SEED, spec);
                &built
            };
            let recall = if spec == IndexSpec::Flat {
                1.0
            } else {
                chunk_recall_vs_flat(d, flat)
            };
            let runs = LOAD_MULTS
                .iter()
                .map(|&mult| {
                    let arrivals = poisson_arrivals(seed ^ 0xA11, base * mult, n);
                    let mut cfg = RunConfig::standard(metis(), arrivals, seed);
                    cfg.index = spec;
                    (mult, Runner::new(d, cfg).run())
                })
                .collect();
            (recall, runs)
        });
    }
    let cells = sweep.run();

    for (li, &mult) in LOAD_MULTS.iter().enumerate() {
        for (si, spec) in specs.iter().enumerate() {
            let (recall, runs) = &cells[si].value;
            let r = &runs[li].1;
            let ret = r.retrieval();
            println!(
                "  {:<8} {:<24} {:>8.2}ms {:>8.2}ms {:>9.3} {:>9.3} {:>9.2} {:>7.3}",
                format!("{mult:.0}x"),
                spec.label(),
                ret.p50() * 1e3,
                ret.p99() * 1e3,
                recall,
                r.mean_retrieval_recall(),
                r.mean_delay_secs(),
                r.mean_f1(),
            );
        }
    }

    let mut report = new_report(
        "fig_retrieval",
        "flat vs IVF retrieval latency-recall tradeoff across load",
    )
    .knob("queries", n)
    .knob("dataset", kind.name())
    .knob("recall_k", RECALL_K);
    for (si, spec) in specs.iter().enumerate() {
        let cell = &cells[si];
        let (recall, runs) = &cell.value;
        for (mult, r) in runs {
            report.cells.push(
                r.cell_report(format!("{}/{mult:.2}x", cell.id), cell.seed)
                    .knob("index", spec.label())
                    .knob("load_mult", format!("{mult:.2}"))
                    .metric("chunk_recall_at_8", *recall),
            );
        }
    }
    emit(&report);
}

//! Figure 18: the per-query profiling delay is a small fraction of the
//! end-to-end response delay.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits
//! `bench-reports/fig18_profiler_overhead.json`.

use metis_bench::{base_qps, bench_queries, dataset, emit, header, metis, new_report, run, Sweep};
use metis_datasets::DatasetKind;

fn main() {
    header(
        "Figure 18",
        "Profiler delay as a fraction of end-to-end delay",
        "at most ~0.1 of the total delay; 0.03-0.06 in the average case",
    );
    let n = bench_queries(120);
    println!(
        "  {:<16} {:>10} {:>10} {:>12}",
        "dataset", "mean", "max", "mean prof(s)"
    );
    let mut sweep = Sweep::new("fig18");
    for kind in DatasetKind::all() {
        sweep = sweep.cell(kind.name(), move |seed| {
            let d = dataset(kind, n);
            run(&d, metis(), base_qps(kind), seed)
        });
    }
    let cells = sweep.run();
    let mut report = new_report(
        "fig18_profiler_overhead",
        "profiler delay fraction of end-to-end delay",
    )
    .knob("queries", n);
    for cell in &cells {
        let r = &cell.value;
        let fractions: Vec<f64> = r
            .per_query
            .iter()
            .map(|q| {
                if q.delay_secs > 0.0 {
                    q.profiler_secs / q.delay_secs
                } else {
                    0.0
                }
            })
            .collect();
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        let max = fractions.iter().fold(0.0f64, |a, &b| a.max(b));
        let mean_prof =
            r.per_query.iter().map(|q| q.profiler_secs).sum::<f64>() / r.per_query.len() as f64;
        println!(
            "  {:<16} {:>10.3} {:>10.3} {:>12.3}",
            cell.id, mean, max, mean_prof
        );
        report.cells.push(
            r.cell_report(&cell.id, cell.seed)
                .knob("dataset", &cell.id)
                .metric("profiler_fraction_mean", mean)
                .metric("profiler_fraction_max", max)
                .metric("profiler_secs_mean", mean_prof),
        );
    }
    emit(&report);
}

//! Figure 18: the per-query profiling delay is a small fraction of the
//! end-to-end response delay.

use metis_bench::{base_qps, dataset, header, metis, run, RUN_SEED};
use metis_datasets::DatasetKind;

fn main() {
    header(
        "Figure 18",
        "Profiler delay as a fraction of end-to-end delay",
        "at most ~0.1 of the total delay; 0.03-0.06 in the average case",
    );
    println!(
        "  {:<16} {:>10} {:>10} {:>12}",
        "dataset", "mean", "max", "mean prof(s)"
    );
    for kind in DatasetKind::all() {
        let d = dataset(kind, 120);
        let r = run(&d, metis(), base_qps(kind), RUN_SEED);
        let fractions: Vec<f64> = r
            .per_query
            .iter()
            .map(|q| {
                if q.delay_secs > 0.0 {
                    q.profiler_secs / q.delay_secs
                } else {
                    0.0
                }
            })
            .collect();
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        let max = fractions.iter().fold(0.0f64, |a, &b| a.max(b));
        let mean_prof =
            r.per_query.iter().map(|q| q.profiler_secs).sum::<f64>() / r.per_query.len() as f64;
        println!(
            "  {:<16} {:>10.3} {:>10.3} {:>12.3}",
            kind.name(),
            mean,
            max,
            mean_prof
        );
    }
}

//! Table 1: input/output token-length distributions of the four datasets.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/table1_datasets.json`.

use metis_bench::{bench_queries, dataset, emit, header, new_report, Sweep};
use metis_datasets::{Dataset, DatasetKind};

fn main() {
    header(
        "Table 1",
        "Dataset input/output token distributions",
        "Squad 0.4K–2K in / 5–10 out; Musique 1K–5K / 5–20; \
         KG RAG FinSec 4K–10K / 20–40; QMSUM 4K–12K / 20–60",
    );
    let n = bench_queries(200);
    println!(
        "  {:<16} {:<18} {:>14} {:>12}",
        "Dataset", "Task Type", "Input (p5-p95)", "Gold (p5-p95)"
    );
    let mut sweep: Sweep<'_, Dataset> = Sweep::new("table1");
    for kind in DatasetKind::all() {
        // Dataset construction uses the fixed DATASET_SEED (the table
        // describes the corpus, not run stochasticity).
        sweep = sweep.cell(kind.name(), move |_| dataset(kind, n));
    }
    let cells = sweep.run();
    let mut report =
        new_report("table1_datasets", "dataset token-length distributions").knob("queries", n);
    for cell in &cells {
        let row = cell.value.table1_row();
        println!(
            "  {:<16} {:<18} {:>6} - {:<6} {:>4} - {:<4}",
            row.dataset, row.task, row.input.0, row.input.1, row.output.0, row.output.1
        );
        let mut cr = metis_metrics::CellReport::new(&cell.id, cell.seed);
        cr.queries = n as u64;
        report.cells.push(
            cr.knob("dataset", &cell.id)
                .knob("task", row.task)
                .metric("input_p5", row.input.0 as f64)
                .metric("input_p95", row.input.1 as f64)
                .metric("gold_p5", row.output.0 as f64)
                .metric("gold_p95", row.output.1 as f64),
        );
    }
    println!(
        "\nnote: the paper's Output column counts generated tokens; our gold \
         column counts gold-answer tokens — generated outputs add ~0.9x \
         boilerplate on top (the generation model's fill_ratio)."
    );
    emit(&report);
}

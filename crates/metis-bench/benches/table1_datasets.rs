//! Table 1: input/output token-length distributions of the four datasets.

use metis_bench::{dataset, header};
use metis_datasets::DatasetKind;

fn main() {
    header(
        "Table 1",
        "Dataset input/output token distributions",
        "Squad 0.4K–2K in / 5–10 out; Musique 1K–5K / 5–20; \
         KG RAG FinSec 4K–10K / 20–40; QMSUM 4K–12K / 20–60",
    );
    println!(
        "  {:<16} {:<18} {:>14} {:>12}",
        "Dataset", "Task Type", "Input (p5-p95)", "Gold (p5-p95)"
    );
    for kind in DatasetKind::all() {
        let d = dataset(kind, 200);
        let row = d.table1_row();
        println!(
            "  {:<16} {:<18} {:>6} - {:<6} {:>4} - {:<4}",
            row.dataset, row.task, row.input.0, row.input.1, row.output.0, row.output.1
        );
    }
    println!(
        "\nnote: the paper's Output column counts generated tokens; our gold \
         column counts gold-answer tokens — generated outputs add ~0.9x \
         boilerplate on top (the generation model's fill_ratio)."
    );
}

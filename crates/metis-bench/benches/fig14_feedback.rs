//! Figure 14: golden-configuration feedback improves the profiler over the
//! course of a 350-query workload (§5).
//!
//! Scale knob: `METIS_BENCH_QUERIES` (windows shrink with the workload; at
//! smoke scale the steady-state comparison falls back to overall means).
//! Emits `bench-reports/fig14_feedback.json`.

use metis_bench::{
    base_qps, bench_queries, dataset, emit, header, new_report, run, Sweep, RUN_SEED,
};
use metis_core::{MetisOptions, RunResult, SystemKind};
use metis_datasets::DatasetKind;
use metis_profiler::ProfilerKind;

fn windowed_f1(r: &RunResult, window: usize) -> Vec<f64> {
    r.per_query
        .chunks(window)
        .map(|w| w.iter().map(|q| q.f1).sum::<f64>() / w.len() as f64)
        .collect()
}

/// Mean of the windows past the warm-up, falling back to the overall mean
/// when the workload is too short to have one (smoke runs).
fn steady_state(windows: &[f64], overall: f64) -> f64 {
    if windows.len() > 2 {
        windows.iter().skip(2).sum::<f64>() / (windows.len() - 2) as f64
    } else {
        overall
    }
}

fn main() {
    header(
        "Figure 14",
        "Profiler feedback over a 350-query workload",
        "the feedback mechanism improves F1 by 4-6% relative to no feedback",
    );
    let n = bench_queries(350);
    let window = (n / 5).max(1);
    let mut report = new_report("fig14_feedback", "golden-config feedback vs none")
        .knob("queries", n)
        .knob("window", window)
        .knob("profiler", "llama70b");
    for kind in [DatasetKind::Qmsum, DatasetKind::FinSec] {
        let qps = base_qps(kind);
        let d = dataset(kind, n);
        let mut with = MetisOptions::full();
        with.feedback = true;
        // Use the noisier profiler so feedback has headroom to help — with
        // GPT-4o the profiles are near-perfect from the start — and disable
        // the §5 confidence fallback, which otherwise masks most profile
        // errors (the two refinements overlap in what they fix).
        with.profiler = ProfilerKind::Llama70b;
        with.confidence_fallback = false;
        let mut without = with;
        without.feedback = false;

        let dref = &d;
        let cells = Sweep::new(format!("fig14/{}", kind.name()))
            .cell_with_seed(format!("{}/feedback", kind.name()), RUN_SEED, move |seed| {
                run(dref, SystemKind::Metis(with), qps, seed)
            })
            .cell_with_seed(
                format!("{}/no_feedback", kind.name()),
                RUN_SEED,
                move |seed| run(dref, SystemKind::Metis(without), qps, seed),
            )
            .run();
        let r_with = &cells[0].value;
        let r_without = &cells[1].value;

        println!("\n--- {} (λ = {qps}/s, {n} queries) ---", kind.name());
        println!("  rolling mean F1 per {window}-query window:");
        let w_with = windowed_f1(r_with, window);
        let w_without = windowed_f1(r_without, window);
        print!("    with feedback:   ");
        for v in &w_with {
            print!(" {v:.3}");
        }
        print!("\n    without feedback:");
        for v in &w_without {
            print!(" {v:.3}");
        }
        let tail_with = steady_state(&w_with, r_with.mean_f1());
        let tail_without = steady_state(&w_without, r_without.mean_f1());
        println!(
            "\n  steady-state improvement: {:+.1}% (overall {:+.1}%)",
            (tail_with / tail_without.max(1e-9) - 1.0) * 100.0,
            (r_with.mean_f1() / r_without.mean_f1().max(1e-9) - 1.0) * 100.0
        );

        for cell in &cells {
            let tail = steady_state(&windowed_f1(&cell.value, window), cell.value.mean_f1());
            report.cells.push(
                cell.value
                    .cell_report(&cell.id, cell.seed)
                    .knob("dataset", kind.name())
                    .metric("steady_state_f1", tail),
            );
        }
    }
    emit(&report);
}

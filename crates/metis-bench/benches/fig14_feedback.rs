//! Figure 14: golden-configuration feedback improves the profiler over the
//! course of a 350-query workload (§5).

use metis_bench::{base_qps, dataset, header, run, RUN_SEED};
use metis_core::{MetisOptions, SystemKind};
use metis_datasets::DatasetKind;
use metis_profiler::ProfilerKind;

fn windowed_f1(r: &metis_core::RunResult, window: usize) -> Vec<f64> {
    r.per_query
        .chunks(window)
        .map(|w| w.iter().map(|q| q.f1).sum::<f64>() / w.len() as f64)
        .collect()
}

fn main() {
    header(
        "Figure 14",
        "Profiler feedback over a 350-query workload",
        "the feedback mechanism improves F1 by 4-6% relative to no feedback",
    );
    for kind in [DatasetKind::Qmsum, DatasetKind::FinSec] {
        let qps = base_qps(kind);
        let d = dataset(kind, 350);
        let mut with = MetisOptions::full();
        with.feedback = true;
        // Use the noisier profiler so feedback has headroom to help — with
        // GPT-4o the profiles are near-perfect from the start — and disable
        // the §5 confidence fallback, which otherwise masks most profile
        // errors (the two refinements overlap in what they fix).
        with.profiler = ProfilerKind::Llama70b;
        with.confidence_fallback = false;
        let mut without = with;
        without.feedback = false;

        let r_with = run(&d, SystemKind::Metis(with), qps, RUN_SEED);
        let r_without = run(&d, SystemKind::Metis(without), qps, RUN_SEED);

        println!("\n--- {} (λ = {qps}/s, 350 queries) ---", kind.name());
        println!("  rolling mean F1 per 70-query window:");
        let w_with = windowed_f1(&r_with, 70);
        let w_without = windowed_f1(&r_without, 70);
        print!("    with feedback:   ");
        for v in &w_with {
            print!(" {v:.3}");
        }
        print!("\n    without feedback:");
        for v in &w_without {
            print!(" {v:.3}");
        }
        let tail_with: f64 = w_with.iter().skip(2).sum::<f64>() / (w_with.len() - 2) as f64;
        let tail_without: f64 =
            w_without.iter().skip(2).sum::<f64>() / (w_without.len() - 2) as f64;
        println!(
            "\n  steady-state improvement: {:+.1}% (overall {:+.1}%)",
            (tail_with / tail_without - 1.0) * 100.0,
            (r_with.mean_f1() / r_without.mean_f1() - 1.0) * 100.0
        );
    }
}

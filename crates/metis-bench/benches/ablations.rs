//! Ablations of the reproduction's design choices (DESIGN.md §6): the
//! confidence fallback, the gang scheduler, the streaming-window fit, the
//! KV-pool cap, and the §4.2 extension knobs (re-ranker / query re-writer).

use metis_bench::{base_qps, dataset, header, run, Row, RUN_SEED};
use metis_core::{rerank_hits, rewrite_query, MetisOptions, RunConfig, Runner, SystemKind};
use metis_datasets::{poisson_arrivals, DatasetKind};
use metis_profiler::ProfilerKind;

fn main() {
    header(
        "Ablations",
        "Design-choice ablations on KG RAG FinSec",
        "(reproduction-specific; no direct paper counterpart)",
    );
    let kind = DatasetKind::FinSec;
    let qps = base_qps(kind);
    let d = dataset(kind, 120);

    // 1. Confidence fallback on/off under the noisy profiler.
    let mut noisy = MetisOptions::full();
    noisy.profiler = ProfilerKind::Llama70b;
    let mut no_fallback = noisy;
    no_fallback.confidence_fallback = false;
    let with_cf = run(&d, SystemKind::Metis(noisy), qps, RUN_SEED);
    let without_cf = run(&d, SystemKind::Metis(no_fallback), qps, RUN_SEED);

    // 2. Gang scheduling on/off.
    let mut no_gang = MetisOptions::full();
    no_gang.gang = false;
    let with_gang = run(&d, SystemKind::Metis(MetisOptions::full()), qps, RUN_SEED);
    let without_gang = run(&d, SystemKind::Metis(no_gang), qps, RUN_SEED);

    // 3. KV-pool cap: paper-scale 12 GB vs unbounded physical pool.
    let arrivals = poisson_arrivals(RUN_SEED ^ 0xA11, qps, d.queries.len());
    let mut unbounded_cfg = RunConfig::standard(
        SystemKind::Metis(MetisOptions::full()),
        arrivals.clone(),
        RUN_SEED,
    );
    unbounded_cfg.engine.kv_pool_bytes_cap = None;
    let unbounded = Runner::new(&d, unbounded_cfg).run();

    // 4. Chunk-level KV prefix cache (§8's KV reuse, 4 GB).
    let mut cache_cfg =
        RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, RUN_SEED);
    cache_cfg.prefix_cache_bytes = Some(4 * (1 << 30));
    let cached = Runner::new(&d, cache_cfg).run();

    let rows = vec![
        Row::from_run("METIS (noisy profiler, conf fallback)", &with_cf),
        Row::from_run("  - without confidence fallback", &without_cf),
        Row::from_run("METIS (gang scheduling)", &with_gang),
        Row::from_run("  - without gang scheduling", &without_gang),
        Row::from_run("  - unbounded KV pool", &unbounded),
        Row::from_run(
            format!(
                "METIS + 4GB chunk-KV cache (hit {:.0}%)",
                cached.prefix_hit_rate * 100.0
            ),
            &cached,
        ),
    ];
    metis_bench::print_rows(&rows);

    // 5. Extension knobs: does the lexical re-ranker recover weakly-embedded
    //    facts, and does query re-writing sharpen retrieval?
    println!("\n  extension knobs (retrieval recall of needed facts @ 8):");
    let mut plain_found = 0usize;
    let mut rerank_found = 0usize;
    let mut rewrite_found = 0usize;
    let mut total = 0usize;
    for q in &d.queries {
        let needed: std::collections::HashSet<_> = q.truth.base.iter().map(|b| b.id).collect();
        let count = |hits: &[metis_vectordb::RetrievalResult]| {
            let mut found = std::collections::HashSet::new();
            for r in hits {
                for f in r.text.fact_ids() {
                    if needed.contains(&f) {
                        found.insert(f);
                    }
                }
            }
            found.len()
        };
        total += needed.len();
        let deep = d.db.retrieve(&q.tokens, 24);
        plain_found += count(&deep[..8.min(deep.len())]);
        let reranked = rerank_hits(&q.tokens, deep.clone());
        rerank_found += count(&reranked[..8.min(reranked.len())]);
        let rewritten = d.db.retrieve(&rewrite_query(&q.tokens), 8);
        rewrite_found += count(&rewritten);
    }
    println!(
        "    plain top-8: {:.3} | re-ranked top-8 of 24: {:.3} | rewritten query top-8: {:.3}",
        plain_found as f64 / total as f64,
        rerank_found as f64 / total as f64,
        rewrite_found as f64 / total as f64
    );
}

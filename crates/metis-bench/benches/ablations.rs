//! Ablations of the reproduction's design choices (DESIGN.md §6): the
//! confidence fallback, the gang scheduler, the streaming-window fit, the
//! KV-pool cap, and the §4.2 extension knobs (re-ranker / query re-writer).
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/ablations.json`.

use metis_bench::{
    base_qps, bench_queries, dataset, emit, header, new_report, run, Row, Sweep, RUN_SEED,
};
use metis_core::{
    rerank_hits, rewrite_query, MetisOptions, RunConfig, RunResult, Runner, SystemKind,
};
use metis_datasets::{poisson_arrivals, DatasetKind};
use metis_profiler::ProfilerKind;

fn main() {
    header(
        "Ablations",
        "Design-choice ablations on KG RAG FinSec",
        "(reproduction-specific; no direct paper counterpart)",
    );
    let kind = DatasetKind::FinSec;
    let qps = base_qps(kind);
    let n = bench_queries(120);
    let d = dataset(kind, n);

    // 1. Confidence fallback on/off under the noisy profiler.
    let mut noisy = MetisOptions::full();
    noisy.profiler = ProfilerKind::Llama70b;
    let mut no_fallback = noisy;
    no_fallback.confidence_fallback = false;
    // 2. Gang scheduling on/off.
    let mut no_gang = MetisOptions::full();
    no_gang.gang = false;

    let dref = &d;
    let cells = Sweep::new("ablations")
        .cell_with_seed("noisy_with_fallback", RUN_SEED, move |seed| {
            run(dref, SystemKind::Metis(noisy), qps, seed)
        })
        .cell_with_seed("noisy_no_fallback", RUN_SEED, move |seed| {
            run(dref, SystemKind::Metis(no_fallback), qps, seed)
        })
        .cell_with_seed("gang", RUN_SEED, move |seed| {
            run(dref, SystemKind::Metis(MetisOptions::full()), qps, seed)
        })
        .cell_with_seed("no_gang", RUN_SEED, move |seed| {
            run(dref, SystemKind::Metis(no_gang), qps, seed)
        })
        // 3. KV-pool cap: paper-scale 12 GB vs unbounded physical pool.
        .cell_with_seed("unbounded_kv", RUN_SEED, move |seed| {
            let arrivals = poisson_arrivals(seed ^ 0xA11, qps, dref.queries.len());
            let mut cfg =
                RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, seed);
            cfg.engine.kv_pool_bytes_cap = None;
            Runner::new(dref, cfg).run()
        })
        // 4. Chunk-level KV prefix cache (§8's KV reuse, 4 GB).
        .cell_with_seed("prefix_cache_4g", RUN_SEED, move |seed| {
            let arrivals = poisson_arrivals(seed ^ 0xA11, qps, dref.queries.len());
            let mut cfg =
                RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, seed);
            cfg.prefix_cache_bytes = Some(4 * (1 << 30));
            Runner::new(dref, cfg).run()
        })
        .run();
    let by = |id: &str| -> &RunResult { &cells.iter().find(|c| c.id == id).expect("cell").value };
    let cached = by("prefix_cache_4g");

    let rows = vec![
        Row::from_run(
            "METIS (noisy profiler, conf fallback)",
            by("noisy_with_fallback"),
        ),
        Row::from_run("  - without confidence fallback", by("noisy_no_fallback")),
        Row::from_run("METIS (gang scheduling)", by("gang")),
        Row::from_run("  - without gang scheduling", by("no_gang")),
        Row::from_run("  - unbounded KV pool", by("unbounded_kv")),
        Row::from_run(
            format!(
                "METIS + 4GB chunk-KV cache (hit {:.0}%)",
                cached.prefix_hit_rate * 100.0
            ),
            cached,
        ),
    ];
    metis_bench::print_rows(&rows);

    // 5. Extension knobs: does the lexical re-ranker recover weakly-embedded
    //    facts, and does query re-writing sharpen retrieval?
    println!("\n  extension knobs (retrieval recall of needed facts @ 8):");
    let mut plain_found = 0usize;
    let mut rerank_found = 0usize;
    let mut rewrite_found = 0usize;
    let mut total = 0usize;
    for q in &d.queries {
        let needed: std::collections::HashSet<_> = q.truth.base.iter().map(|b| b.id).collect();
        let count = |hits: &[metis_vectordb::RetrievalResult]| {
            let mut found = std::collections::HashSet::new();
            for r in hits {
                for f in r.text.fact_ids() {
                    if needed.contains(&f) {
                        found.insert(f);
                    }
                }
            }
            found.len()
        };
        total += needed.len();
        let deep = d.db.retrieve(&q.tokens, 24);
        plain_found += count(&deep[..8.min(deep.len())]);
        let reranked = rerank_hits(&q.tokens, deep.clone());
        rerank_found += count(&reranked[..8.min(reranked.len())]);
        let rewritten = d.db.retrieve(&rewrite_query(&q.tokens), 8);
        rewrite_found += count(&rewritten);
    }
    let (plain, rerank, rewrite) = (
        plain_found as f64 / total as f64,
        rerank_found as f64 / total as f64,
        rewrite_found as f64 / total as f64,
    );
    println!(
        "    plain top-8: {plain:.3} | re-ranked top-8 of 24: {rerank:.3} | \
         rewritten query top-8: {rewrite:.3}"
    );

    let mut report = new_report("ablations", "design-choice ablations on KG RAG FinSec")
        .knob("queries", n)
        .knob("dataset", kind.name());
    for cell in &cells {
        let mut cr = cell
            .value
            .cell_report(&cell.id, cell.seed)
            .knob("dataset", kind.name());
        if cell.id == "prefix_cache_4g" {
            cr = cr.metric("prefix_hit_rate", cell.value.prefix_hit_rate);
        }
        report.cells.push(cr);
    }
    let mut ext = metis_metrics::CellReport::new("extension_knobs", cells[0].seed);
    ext.queries = n as u64;
    report.cells.push(
        ext.metric("fact_recall_plain_top8", plain)
            .metric("fact_recall_rerank_top8of24", rerank)
            .metric("fact_recall_rewrite_top8", rewrite),
    );
    emit(&report);
}

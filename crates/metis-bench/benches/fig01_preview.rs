//! Figure 1: headline preview on KG RAG FinSec — METIS vs AdaptiveRAG*,
//! Parrot*, and vLLM on both delay and quality.

use metis_bench::{
    adaptive_rag, base_qps, best_quality_fixed, dataset, fixed_menu, header, metis, print_rows,
    run, sweep_fixed, Row, RUN_SEED,
};
use metis_datasets::DatasetKind;

fn main() {
    let kind = DatasetKind::FinSec;
    let qps = base_qps(kind);
    let d = dataset(kind, 150);
    header(
        "Figure 1",
        &format!(
            "Preview on {} (λ = {qps}/s, {} queries)",
            kind.name(),
            d.queries.len()
        ),
        "METIS beats vLLM, Parrot (OSDI'24) and AdaptiveRAG (ACL'24) on the \
         delay-quality plane",
    );

    let m = run(&d, metis(), qps, RUN_SEED);
    let a = run(&d, adaptive_rag(), qps, RUN_SEED);
    // Fixed-config baselines pick their best-quality static configuration.
    let vllm_sweep = sweep_fixed(&d, &fixed_menu(), qps, RUN_SEED, false);
    let (vc, vr) = best_quality_fixed(&vllm_sweep);
    let parrot_sweep = sweep_fixed(&d, &[*vc], qps, RUN_SEED, true);
    let (pc, pr) = &parrot_sweep[0];

    let rows = vec![
        Row::from_run("METIS (ours)", &m),
        Row::from_run("AdaptiveRAG*", &a),
        Row::from_run(format!("Parrot* [{}]", pc.label()), pr),
        Row::from_run(format!("vLLM fixed [{}]", vc.label()), vr),
    ];
    print_rows(&rows);
    println!(
        "\nmeasured: METIS delay {:.2}s vs AdaptiveRAG* {:.2}s ({:.2}x), \
         vLLM best fixed {:.2}s ({:.2}x); F1 {:.3} vs {:.3}/{:.3}",
        m.mean_delay_secs(),
        a.mean_delay_secs(),
        a.mean_delay_secs() / m.mean_delay_secs(),
        vr.mean_delay_secs(),
        vr.mean_delay_secs() / m.mean_delay_secs(),
        m.mean_f1(),
        a.mean_f1(),
        vr.mean_f1()
    );
}

//! Figure 1: headline preview on KG RAG FinSec — METIS vs AdaptiveRAG*,
//! Parrot*, and vLLM on both delay and quality.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig01_preview.json`.

use metis_bench::{
    adaptive_rag, base_qps, bench_queries, best_quality_fixed, dataset, emit, fixed_menu, header,
    metis, new_report, print_rows, run, sweep_fixed, Row, Sweep, RUN_SEED,
};
use metis_core::SystemKind;
use metis_datasets::DatasetKind;

fn main() {
    let kind = DatasetKind::FinSec;
    let qps = base_qps(kind);
    let n = bench_queries(150);
    let d = dataset(kind, n);
    header(
        "Figure 1",
        &format!(
            "Preview on {} (λ = {qps}/s, {} queries)",
            kind.name(),
            d.queries.len()
        ),
        "METIS beats vLLM, Parrot (OSDI'24) and AdaptiveRAG (ACL'24) on the \
         delay-quality plane",
    );

    // Fixed-config baselines pick their best-quality static configuration.
    let vllm_sweep = sweep_fixed(&d, &fixed_menu(), qps, RUN_SEED, false);
    let (vc, vr) = best_quality_fixed(&vllm_sweep);
    let config = *vc;
    let d = &d;
    let cells = Sweep::new("fig01")
        .cell_with_seed("metis", RUN_SEED, move |seed| run(d, metis(), qps, seed))
        .cell_with_seed("adaptive_rag", RUN_SEED, move |seed| {
            run(d, adaptive_rag(), qps, seed)
        })
        .cell_with_seed("parrot", RUN_SEED, move |seed| {
            run(d, SystemKind::Parrot { config }, qps, seed)
        })
        .run();
    let by = |id: &str| &cells.iter().find(|c| c.id == id).expect("cell").value;
    let (m, a, pr) = (by("metis"), by("adaptive_rag"), by("parrot"));

    let rows = vec![
        Row::from_run("METIS (ours)", m),
        Row::from_run("AdaptiveRAG*", a),
        Row::from_run(format!("Parrot* [{}]", vc.label()), pr),
        Row::from_run(format!("vLLM fixed [{}]", vc.label()), vr),
    ];
    print_rows(&rows);
    println!(
        "\nmeasured: METIS delay {:.2}s vs AdaptiveRAG* {:.2}s ({:.2}x), \
         vLLM best fixed {:.2}s ({:.2}x); F1 {:.3} vs {:.3}/{:.3}",
        m.mean_delay_secs(),
        a.mean_delay_secs(),
        a.mean_delay_secs() / m.mean_delay_secs(),
        vr.mean_delay_secs(),
        vr.mean_delay_secs() / m.mean_delay_secs(),
        m.mean_f1(),
        a.mean_f1(),
        vr.mean_f1()
    );

    let mut report = new_report("fig01_preview", "headline preview on KG RAG FinSec")
        .knob("queries", n)
        .knob("dataset", kind.name())
        .knob("fixed_config", vc.label());
    for cell in &cells {
        report.cells.push(
            cell.value
                .cell_report(&cell.id, cell.seed)
                .knob("system", &cell.id),
        );
    }
    report.cells.push(
        vr.cell_report("vllm_fixed_best", RUN_SEED)
            .knob("system", "vllm_fixed"),
    );
    emit(&report);
}

//! Replica scaling: mean/p99 delay and goodput of METIS across 1/2/4
//! engine replicas under rising offered load, comparing the KV-aware
//! `least-kv` router against blind round-robin.
//!
//! This experiment goes beyond the paper (which serves one backend): it
//! checks that (a) extra replicas absorb proportionally higher load before
//! delay collapses, and (b) routing by free KV bytes — the same signal
//! METIS's best-fit sizes against — beats round-robin at high load, because
//! a query lands on the backend with the most configuration headroom.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig_replicas.json`.

use metis_bench::{
    base_qps, bench_queries, dataset, emit, header, metis, new_report, run_replicated, Sweep,
    RUN_SEED,
};
use metis_datasets::DatasetKind;
use metis_engine::RouterPolicy;

const REPLICAS: [usize; 3] = [1, 2, 4];
const MULTS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

fn main() {
    header(
        "Replica scaling",
        "METIS over 1/2/4 engine replicas, rising load",
        "delay stays near the single-replica low-load level while offered \
         load scales with the replica count; least-kv routing dominates \
         round-robin once replicas saturate",
    );
    let n = bench_queries(96);
    let kind = DatasetKind::Musique;
    let d = dataset(kind, n);
    let base = base_qps(kind);
    println!(
        "\n--- {} ({} queries, base λ = {base}/s) ---",
        kind.name(),
        n
    );
    println!(
        "  {:<8} {:<10} {:>12} {:>12} {:>10} {:>14}",
        "load", "replicas", "rr mean(s)", "lkv mean(s)", "lkv p99", "lkv spread"
    );

    // All (load multiple, replica count, router) points on the sweep driver.
    let mut sweep = Sweep::new("fig_replicas");
    for &mult in &MULTS {
        for &replicas in &REPLICAS {
            for (tag, router) in [
                ("rr", RouterPolicy::RoundRobin),
                ("lkv", RouterPolicy::LeastKvLoad),
            ] {
                let d = &d;
                sweep = sweep.cell_with_seed(
                    format!("{mult:.0}x/{replicas}r/{tag}"),
                    RUN_SEED,
                    move |seed| run_replicated(d, metis(), base * mult, seed, replicas, router),
                );
            }
        }
    }
    let cells = sweep.run();
    let find = |mult: f64, replicas: usize, tag: &str| {
        &cells
            .iter()
            .find(|c| c.id == format!("{mult:.0}x/{replicas}r/{tag}"))
            .expect("cell computed")
            .value
    };
    for &mult in &MULTS {
        for &replicas in &REPLICAS {
            let rr = find(mult, replicas, "rr");
            let lkv = find(mult, replicas, "lkv");
            let lat = lkv.latency();
            let spread: Vec<String> = lkv
                .completions_by_replica()
                .iter()
                .map(usize::to_string)
                .collect();
            println!(
                "  {:<8} {:<10} {:>12.2} {:>12.2} {:>10.2} {:>14}",
                format!("{mult:.0}x"),
                replicas,
                rr.latency().mean(),
                lat.mean(),
                lat.p99(),
                spread.join("/"),
            );
        }
    }

    let mut report = new_report("fig_replicas", "replica scaling under rising load")
        .knob("queries", n)
        .knob("dataset", kind.name());
    for cell in &cells {
        report.cells.push(
            cell.value
                .cell_report(&cell.id, cell.seed)
                .knob("dataset", kind.name()),
        );
    }
    emit(&report);
}

//! Replica scaling: mean/p99 delay and goodput of METIS across 1/2/4
//! engine replicas under rising offered load, comparing the KV-aware
//! `least-kv` router against blind round-robin.
//!
//! This experiment goes beyond the paper (which serves one backend): it
//! checks that (a) extra replicas absorb proportionally higher load before
//! delay collapses, and (b) routing by free KV bytes — the same signal
//! METIS's best-fit sizes against — beats round-robin at high load, because
//! a query lands on the backend with the most configuration headroom.
//!
//! Scale knob: `METIS_BENCH_QUERIES` (CI smoke runs set it low).

use std::sync::Mutex;

use metis_bench::{base_qps, bench_queries, dataset, header, metis, run_replicated, RUN_SEED};
use metis_datasets::DatasetKind;
use metis_engine::RouterPolicy;

const REPLICAS: [usize; 3] = [1, 2, 4];
const MULTS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

fn main() {
    header(
        "Replica scaling",
        "METIS over 1/2/4 engine replicas, rising load",
        "delay stays near the single-replica low-load level while offered \
         load scales with the replica count; least-kv routing dominates \
         round-robin once replicas saturate",
    );
    let n = bench_queries(96);
    let kind = DatasetKind::Musique;
    let d = dataset(kind, n);
    let base = base_qps(kind);
    println!(
        "\n--- {} ({} queries, base λ = {base}/s) ---",
        kind.name(),
        n
    );
    println!(
        "  {:<8} {:<10} {:>12} {:>12} {:>10} {:>14}",
        "load", "replicas", "rr mean(s)", "lkv mean(s)", "lkv p99", "lkv spread"
    );

    // All (load multiple, replica count, router) points in parallel.
    type Key = (usize, usize, bool);
    type Cell = (Key, f64, f64, Vec<usize>);
    let cells: Mutex<Vec<Cell>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (mi, &mult) in MULTS.iter().enumerate() {
            for (ri, &replicas) in REPLICAS.iter().enumerate() {
                for (least_kv, router) in [
                    (false, RouterPolicy::RoundRobin),
                    (true, RouterPolicy::LeastKvLoad),
                ] {
                    let d = &d;
                    let cells = &cells;
                    s.spawn(move || {
                        let r = run_replicated(d, metis(), base * mult, RUN_SEED, replicas, router);
                        let lat = r.latency();
                        cells.lock().expect("poisoned").push((
                            (mi, ri, least_kv),
                            lat.mean(),
                            lat.p99(),
                            r.completions_by_replica(),
                        ));
                    });
                }
            }
        }
    });
    let cells = cells.into_inner().expect("poisoned");
    let find = |k: Key| {
        cells
            .iter()
            .find(|(key, ..)| *key == k)
            .expect("cell computed")
    };
    for (mi, &mult) in MULTS.iter().enumerate() {
        for (ri, &replicas) in REPLICAS.iter().enumerate() {
            let (_, rr_mean, ..) = find((mi, ri, false));
            let (_, lkv_mean, lkv_p99, spread) = find((mi, ri, true));
            let spread: Vec<String> = spread.iter().map(usize::to_string).collect();
            println!(
                "  {:<8} {:<10} {:>12.2} {:>12.2} {:>10.2} {:>14}",
                format!("{mult:.0}x"),
                replicas,
                rr_mean,
                lkv_mean,
                lkv_p99,
                spread.join("/"),
            );
        }
    }
}

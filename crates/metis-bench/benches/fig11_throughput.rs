//! Figure 11: mean delay vs offered load (queries/second) — METIS vs
//! Parrot* and vLLM with the fixed configuration of closest quality.
//!
//! The x-axis is expressed as a multiple of each dataset's calibrated base
//! rate (see `metis_bench::base_qps`); the paper's absolute 0–8 q/s axis is
//! testbed-specific.
//!
//! Scale knob: `METIS_BENCH_QUERIES` (CI smoke runs set it low). Emits
//! `bench-reports/fig11_throughput.json` — one of the three reports the CI
//! perf gate diffs against `baselines/`.

use metis_bench::{
    base_qps, bench_queries, best_quality_fixed, dataset, emit, fixed_menu, header, metis,
    new_report, run, sweep_fixed, Sweep, RUN_SEED,
};
use metis_core::{RunResult, SystemKind};
use metis_datasets::DatasetKind;

const MULTS: [f64; 6] = [0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
const SYSTEMS: [&str; 3] = ["metis", "parrot", "vllm"];

fn main() {
    header(
        "Figure 11",
        "Throughput: mean delay vs offered load",
        "METIS sustains 1.8-4.5x higher throughput than fixed-config \
         baselines of closest quality at the same delay",
    );
    let n = bench_queries(120);
    let mut report = new_report(
        "fig11_throughput",
        "mean delay vs offered load, METIS vs Parrot* and best-quality vLLM fixed",
    )
    .knob("queries", n)
    .knob("load_mults", format!("{MULTS:?}"));

    for kind in DatasetKind::all() {
        let d = dataset(kind, n);
        let base = base_qps(kind);
        // Fixed baseline = best-quality static config at the base rate.
        let sweep = sweep_fixed(&d, &fixed_menu(), base, RUN_SEED, false);
        let (qc, _) = best_quality_fixed(&sweep);
        println!(
            "\n--- {} (base λ = {base}/s, fixed = {}) ---",
            kind.name(),
            qc.label()
        );
        println!(
            "  {:<10} {:>11} {:>11} {:>11}",
            "load", "METIS(s)", "Parrot*(s)", "vLLM(s)"
        );

        // All (multiplier, system) points on the sweep driver.
        let mut grid = Sweep::new(format!("fig11/{}", kind.name()));
        for &mult in &MULTS {
            for sys in SYSTEMS {
                let d = &d;
                let config = *qc;
                grid = grid.cell_with_seed(
                    format!("{}/{sys}/{mult:.2}x", kind.name()),
                    RUN_SEED,
                    move |seed| {
                        let system = match sys {
                            "metis" => metis(),
                            "parrot" => SystemKind::Parrot { config },
                            _ => SystemKind::VllmFixed { config },
                        };
                        run(d, system, base * mult, seed)
                    },
                );
            }
        }
        let cells = grid.run();
        let delay_of = |mult: f64, sys: &str| -> f64 {
            cells
                .iter()
                .find(|c| c.id == format!("{}/{sys}/{mult:.2}x", kind.name()))
                .expect("cell computed")
                .value
                .mean_delay_secs()
        };
        for &mult in &MULTS {
            println!(
                "  {:<10} {:>11.2} {:>11.2} {:>11.2}",
                format!("{:.2}x", mult),
                delay_of(mult, "metis"),
                delay_of(mult, "parrot"),
                delay_of(mult, "vllm"),
            );
        }
        // Throughput at a delay budget: the largest load multiple where mean
        // delay stays within 3x the low-load delay.
        let budget = |sys: &str| -> f64 {
            let cap = delay_of(MULTS[0], sys) * 3.0;
            MULTS
                .iter()
                .filter(|&&m| delay_of(m, sys) <= cap)
                .fold(0.0, |acc, &m| acc.max(m))
        };
        let (tm, tp, tv) = (budget("metis"), budget("parrot"), budget("vllm"));
        println!(
            "  sustainable load within 3x low-load delay: METIS {tm:.2}x, \
             Parrot* {tp:.2}x, vLLM {tv:.2}x → METIS/vLLM = {:.2}x",
            tm / tv.max(1e-9)
        );

        for cell in &cells {
            let r: &RunResult = &cell.value;
            let (_, sys, mult) = split_id(&cell.id);
            report.cells.push(
                r.cell_report(&cell.id, cell.seed)
                    .knob("dataset", kind.name())
                    .knob("system", sys)
                    .knob("load_mult", mult)
                    .knob("fixed_config", qc.label()),
            );
        }
    }
    emit(&report);
}

fn split_id(id: &str) -> (&str, &str, &str) {
    let mut it = id.splitn(3, '/');
    (
        it.next().unwrap_or(""),
        it.next().unwrap_or(""),
        it.next().unwrap_or(""),
    )
}

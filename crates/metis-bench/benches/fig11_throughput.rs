//! Figure 11: mean delay vs offered load (queries/second) — METIS vs
//! Parrot* and vLLM with the fixed configuration of closest quality.
//!
//! The x-axis is expressed as a multiple of each dataset's calibrated base
//! rate (see `metis_bench::base_qps`); the paper's absolute 0–8 q/s axis is
//! testbed-specific.

use std::sync::Mutex;

use metis_bench::{
    base_qps, best_quality_fixed, dataset, fixed_menu, header, metis, run, sweep_fixed, RUN_SEED,
};
use metis_core::SystemKind;
use metis_datasets::DatasetKind;

const MULTS: [f64; 6] = [0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

fn main() {
    header(
        "Figure 11",
        "Throughput: mean delay vs offered load",
        "METIS sustains 1.8-4.5x higher throughput than fixed-config \
         baselines of closest quality at the same delay",
    );
    for kind in DatasetKind::all() {
        let d = dataset(kind, 120);
        let base = base_qps(kind);
        // Fixed baseline = best-quality static config at the base rate.
        let sweep = sweep_fixed(&d, &fixed_menu(), base, RUN_SEED, false);
        let (qc, _) = best_quality_fixed(&sweep);
        println!(
            "\n--- {} (base λ = {base}/s, fixed = {}) ---",
            kind.name(),
            qc.label()
        );
        println!(
            "  {:<10} {:>11} {:>11} {:>11}",
            "load", "METIS(s)", "Parrot*(s)", "vLLM(s)"
        );

        // All (multiplier, system) points in parallel.
        let rows: Mutex<Vec<(usize, usize, f64)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for (mi, &mult) in MULTS.iter().enumerate() {
                for si in 0..3usize {
                    let d = &d;
                    let rows = &rows;
                    let config = *qc;
                    s.spawn(move || {
                        let system = match si {
                            0 => metis(),
                            1 => SystemKind::Parrot { config },
                            _ => SystemKind::VllmFixed { config },
                        };
                        let r = run(d, system, base * mult, RUN_SEED);
                        rows.lock()
                            .expect("poisoned")
                            .push((mi, si, r.mean_delay_secs()));
                    });
                }
            }
        });
        let rows = rows.into_inner().expect("poisoned");
        let mut grid = [[0.0f64; 3]; MULTS.len()];
        for (mi, si, v) in rows {
            grid[mi][si] = v;
        }
        for (mi, &mult) in MULTS.iter().enumerate() {
            println!(
                "  {:<10} {:>11.2} {:>11.2} {:>11.2}",
                format!("{:.2}x", mult),
                grid[mi][0],
                grid[mi][1],
                grid[mi][2]
            );
        }
        // Throughput at a delay budget: the largest load multiple where mean
        // delay stays within 3x the low-load delay.
        let budget = |col: usize| -> f64 {
            let cap = grid[0][col] * 3.0;
            MULTS
                .iter()
                .enumerate()
                .filter(|(mi, _)| grid[*mi][col] <= cap)
                .map(|(_, &m)| m)
                .fold(0.0, f64::max)
        };
        let (tm, tp, tv) = (budget(0), budget(1), budget(2));
        println!(
            "  sustainable load within 3x low-load delay: METIS {tm:.2}x, \
             Parrot* {tp:.2}x, vLLM {tv:.2}x → METIS/vLLM = {:.2}x",
            tm / tv.max(1e-9)
        );
    }
}

//! Million-chunk ANN scaling: flat vs IVF vs HNSW × f32 vs sq8.
//!
//! Sweeps corpus size × index family × vector storage over the planted
//! ground-truth ANN corpus ([`metis_datasets::ann`]), measuring recall@k
//! against the exact gold neighbors, the *reported* search work (distance
//! evaluations split by domain, graph hops, probed lists), and the
//! [`RetrievalModel`]-priced per-query retrieval latency. The output is
//! the recall/latency frontier the paper-scale question turns on: at 10⁶
//! chunks a flat scan prices at ~20 s/query, IVF at ~1.3 s, and HNSW over
//! sq8 codes in the low milliseconds at ≥ 0.9 recall@10 — two orders of
//! magnitude fewer distance evaluations than the scan.
//!
//! Scale knob: `METIS_BENCH_QUERIES` — when set (CI smoke), the corpus
//! sizes shrink to {2·10³, 10⁴} so the sweep completes in seconds; unset,
//! the full {10⁴, 10⁵, 10⁶} ladder runs. Emits
//! `bench-reports/fig_ann_scale.json`, diffed by the CI perf gate against
//! `baselines/fig_ann_scale.json` (smoke shape).

use metis_bench::{bench_queries, emit, header, new_report, Sweep, DATASET_SEED, RUN_SEED};
use metis_core::RetrievalModel;
use metis_datasets::{AnnConfig, AnnCorpus};
use metis_metrics::{LatencySummary, SummaryStats};
use metis_vectordb::{
    FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Quantization, SearchWork, SqFlatIndex,
    SqIvfIndex, VectorIndex,
};

const FULL_SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
const SMOKE_SIZES: [usize; 2] = [2_000, 10_000];

/// Index families swept at every size.
const FAMILIES: [&str; 3] = ["flat", "ivf", "hnsw"];
const STORAGES: [Quantization; 2] = [Quantization::F32, Quantization::Sq8 { rerank: 4 }];

/// IVF shape for a given corpus size: ~√n lists (clamped), probing 1/16 of
/// them — the classical sublinear operating point.
fn ivf_config(n: usize) -> IvfConfig {
    let nlist = ((n as f64).sqrt() as usize).clamp(16, 256);
    IvfConfig {
        nlist,
        nprobe: (nlist / 16).max(2),
        train_iters: 8,
    }
}

/// HNSW shape: default graph degree and construction beam, with the
/// search budget raised from the library default (64) for recall margin
/// at the million-vector end of the ladder — even at ef=192 the reported
/// work stays orders of magnitude below both the flat scan and the IVF
/// probe at that scale.
fn hnsw_config() -> HnswConfig {
    HnswConfig {
        ef_search: 192,
        ..HnswConfig::default()
    }
}

/// One measured cell: aggregate work, recall, and model-priced latencies.
struct Measured {
    recall: f64,
    work: SearchWork,
    latency: LatencySummary,
    index_label: String,
}

/// Searches every corpus query through `index`, scoring recall@k against
/// the planted gold and pricing each query's reported work.
fn measure(corpus: &AnnCorpus, index: &dyn VectorIndex, label: &str) -> Measured {
    let model = RetrievalModel::default();
    let k = corpus.config.k;
    let mut work = SearchWork::default();
    let mut recall_sum = 0.0;
    let mut lats = Vec::with_capacity(corpus.queries.len());
    for q in &corpus.queries {
        let out = index.search_counted(&q.vector, k);
        let ids: Vec<_> = out.hits.iter().map(|h| h.chunk).collect();
        recall_sum += AnnCorpus::recall(&q.gold, &ids);
        lats.push(model.nanos(&out.work, 0) as f64 / 1e9);
        work.add(&out.work);
    }
    Measured {
        recall: recall_sum / corpus.queries.len() as f64,
        work,
        latency: LatencySummary::new(lats),
        index_label: label.to_owned(),
    }
}

fn build_and_measure(corpus: &AnnCorpus, family: &str, quant: Quantization) -> Measured {
    let dim = corpus.config.dim;
    let items = &corpus.items;
    match (family, quant.is_quantized()) {
        ("flat", false) => {
            let mut idx = FlatIndex::new(dim);
            for (id, v) in items {
                idx.add(*id, v);
            }
            measure(corpus, &idx, "flat")
        }
        ("flat", true) => {
            let idx = SqFlatIndex::build(dim, quant.rerank(), items);
            measure(corpus, &idx, "flat")
        }
        ("ivf", exact_or_sq8) => {
            let config = ivf_config(items.len());
            let label = format!("ivf(nlist={},nprobe={})", config.nlist, config.nprobe);
            let idx = IvfIndex::build(dim, config, items);
            if exact_or_sq8 {
                let sq = SqIvfIndex::from_ivf(&idx, quant.rerank());
                measure(corpus, &sq, &label)
            } else {
                measure(corpus, &idx, &label)
            }
        }
        ("hnsw", _) => {
            let config = hnsw_config();
            let label = format!("hnsw(m={},ef={})", config.m, config.ef_search);
            let idx = HnswIndex::build(dim, config, quant, items);
            measure(corpus, &idx, &label)
        }
        (other, _) => unreachable!("unknown family {other}"),
    }
}

fn main() {
    header(
        "fig_ann_scale",
        "million-chunk ANN scaling: flat vs IVF vs HNSW, f32 vs sq8",
        "at corpus scale the paper's flat scan stops being viable: HNSW \
         over sq8 codes holds >=0.9 recall@10 with orders of magnitude \
         fewer distance evals, putting retrieval p50 far below the IVF \
         frontier at matched recall",
    );
    let num_queries = bench_queries(64);
    let smoke = std::env::var("METIS_BENCH_QUERIES").is_ok();
    let sizes: &[usize] = if smoke { &SMOKE_SIZES } else { &FULL_SIZES };

    // One corpus per size, shared by all six (family × storage) cells.
    let corpora: Vec<AnnCorpus> = sizes
        .iter()
        .map(|&n| {
            AnnCorpus::generate(AnnConfig {
                num_queries,
                ..AnnConfig::at_scale(n, DATASET_SEED)
            })
        })
        .collect();

    let mut sweep: Sweep<'_, Measured> = Sweep::new("fig_ann_scale");
    for (si, &n) in sizes.iter().enumerate() {
        for family in FAMILIES {
            for quant in STORAGES {
                let corpus = &corpora[si];
                sweep = sweep.cell_with_seed(
                    format!("n{n}/{family}/{}", quant.name()),
                    RUN_SEED,
                    move |_| build_and_measure(corpus, family, quant),
                );
            }
        }
    }
    let cells = sweep.run();

    println!(
        "\n  {:<10} {:<26} {:<5} {:>9} {:>12} {:>12} {:>8} {:>10}",
        "corpus", "index", "store", "recall@k", "exact evals", "sq8 evals", "hops", "ret p50"
    );
    let mut report = new_report(
        "fig_ann_scale",
        "recall/latency frontier of flat vs IVF vs HNSW with sq8 storage at corpus scale",
    )
    .knob("queries", num_queries)
    .knob("recall_k", 10)
    .knob("sizes", format!("{sizes:?}"));
    let per_query = |v: usize| v as f64 / num_queries.max(1) as f64;
    for (ci, cell) in cells.iter().enumerate() {
        let n = sizes[ci / (FAMILIES.len() * STORAGES.len())];
        let quant = STORAGES[ci % STORAGES.len()];
        let m = &cell.value;
        println!(
            "  {:<10} {:<26} {:<5} {:>9.3} {:>12.1} {:>12.1} {:>8.1} {:>8.2}ms",
            n,
            m.index_label,
            quant.name(),
            m.recall,
            per_query(m.work.vectors_scored),
            per_query(m.work.quantized_scored),
            per_query(m.work.graph_hops),
            m.latency.p50() * 1e3,
        );
        let mut rc = metis_metrics::CellReport::new(cell.id.clone(), cell.seed);
        rc.queries = num_queries as u64;
        rc.retrieval = SummaryStats::of(&m.latency);
        rc.retrieval_recall = m.recall;
        report.cells.push(
            rc.knob("index", m.index_label.clone())
                .knob("quantize", quant.name())
                .knob("corpus_size", n)
                .metric("index_distance_evals", per_query(m.work.vectors_scored))
                .metric("index_quantized_evals", per_query(m.work.quantized_scored))
                .metric("index_hops", per_query(m.work.graph_hops))
                .metric("index_lists_probed", per_query(m.work.lists_probed)),
        );
    }
    emit(&report);
}

//! Figure 12: decomposing METIS's delay improvement — profiler+median
//! choice, application-aware batching, and memory-aware joint adaptation.

use metis_bench::{
    base_qps, best_quality_fixed, dataset, fixed_menu, header, run, sweep_fixed, RUN_SEED,
};
use metis_core::{MetisOptions, PickPolicy, SystemKind};
use metis_datasets::DatasetKind;

fn main() {
    header(
        "Figure 12",
        "Understanding the delay improvement",
        "vs vLLM's highest-quality fixed config: profiler+median = \
         1.4-1.68x; +batching = 1.1-1.2x more; full joint adaptation = \
         1.45-1.75x more",
    );
    for kind in [DatasetKind::FinSec, DatasetKind::Musique] {
        let qps = base_qps(kind);
        let d = dataset(kind, 150);
        let sweep = sweep_fixed(&d, &fixed_menu(), qps, RUN_SEED, false);
        let (qc, qr) = best_quality_fixed(&sweep);

        let mut median = MetisOptions::full();
        median.pick = PickPolicy::Median;
        median.gang = false;
        let mut median_gang = median;
        median_gang.gang = true;

        let r_median = run(&d, SystemKind::Metis(median), qps, RUN_SEED);
        let r_gang = run(&d, SystemKind::Metis(median_gang), qps, RUN_SEED);
        let r_full = run(&d, SystemKind::Metis(MetisOptions::full()), qps, RUN_SEED);

        println!("\n--- {} (λ = {qps}/s) ---", kind.name(),);
        let base = qr.mean_delay_secs();
        let rows = [
            (
                format!("vLLM fixed best-quality [{}]", qc.label()),
                base,
                qr.mean_f1(),
            ),
            (
                "profiler + median config".into(),
                r_median.mean_delay_secs(),
                r_median.mean_f1(),
            ),
            (
                "median config + batching".into(),
                r_gang.mean_delay_secs(),
                r_gang.mean_f1(),
            ),
            (
                "METIS (joint adaptation)".into(),
                r_full.mean_delay_secs(),
                r_full.mean_f1(),
            ),
        ];
        for (label, delay, f1) in &rows {
            println!(
                "  {:<36} {:>7.2}s  ({:.2}x vs fixed)  F1 {:.3}",
                label,
                delay,
                base / delay.max(1e-9),
                f1
            );
        }
    }
}

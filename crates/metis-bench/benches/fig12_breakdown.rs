//! Figure 12: decomposing METIS's delay improvement — profiler+median
//! choice, application-aware batching, and memory-aware joint adaptation —
//! plus the per-stage wall-time breakdown of each variant's delay
//! (profile / decide / retrieve / queue-wait / prefill / decode), now that
//! `RunResult::stage_breakdown()` partitions every query's delay exactly.
//!
//! Scale knob: `METIS_BENCH_QUERIES`. Emits `bench-reports/fig12_breakdown.json`.

use metis_bench::{
    base_qps, bench_queries, best_quality_fixed, dataset, emit, fixed_menu, header, new_report,
    run, sweep_fixed, Sweep, RUN_SEED,
};
use metis_core::{MetisOptions, PickPolicy, RunResult, StageMeans, SystemKind};
use metis_datasets::DatasetKind;

fn stage_row(label: &str, s: &StageMeans) {
    println!(
        "    {:<32} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>7.2}s",
        label,
        s.profile,
        s.decide,
        s.retrieve,
        s.queue_wait,
        s.prefill,
        s.decode,
        s.total()
    );
}

fn main() {
    header(
        "Figure 12",
        "Understanding the delay improvement",
        "vs vLLM's highest-quality fixed config: profiler+median = \
         1.4-1.68x; +batching = 1.1-1.2x more; full joint adaptation = \
         1.45-1.75x more",
    );
    let n = bench_queries(150);
    let mut report = new_report(
        "fig12_breakdown",
        "delay-improvement decomposition with per-stage wall-time breakdown",
    )
    .knob("queries", n);
    for kind in [DatasetKind::FinSec, DatasetKind::Musique] {
        let qps = base_qps(kind);
        let d = dataset(kind, n);
        let sweep = sweep_fixed(&d, &fixed_menu(), qps, RUN_SEED, false);
        let (qc, qr) = best_quality_fixed(&sweep);

        let mut median = MetisOptions::full();
        median.pick = PickPolicy::Median;
        median.gang = false;
        let mut median_gang = median;
        median_gang.gang = true;

        let dref = &d;
        let variants = Sweep::new(format!("fig12/{}", kind.name()))
            .cell_with_seed(format!("{}/median", kind.name()), RUN_SEED, move |seed| {
                run(dref, SystemKind::Metis(median), qps, seed)
            })
            .cell_with_seed(
                format!("{}/median_gang", kind.name()),
                RUN_SEED,
                move |seed| run(dref, SystemKind::Metis(median_gang), qps, seed),
            )
            .cell_with_seed(format!("{}/full", kind.name()), RUN_SEED, move |seed| {
                run(dref, SystemKind::Metis(MetisOptions::full()), qps, seed)
            })
            .run();
        let by = |suffix: &str| -> &RunResult {
            &variants
                .iter()
                .find(|c| c.id.ends_with(suffix))
                .expect("cell")
                .value
        };
        let (r_median, r_gang, r_full) = (by("/median"), by("/median_gang"), by("/full"));

        println!("\n--- {} (λ = {qps}/s) ---", kind.name());
        let base = qr.mean_delay_secs();
        let rows = [
            (
                format!("vLLM fixed best-quality [{}]", qc.label()),
                qr.mean_delay_secs(),
                qr.mean_f1(),
            ),
            (
                "profiler + median config".into(),
                r_median.mean_delay_secs(),
                r_median.mean_f1(),
            ),
            (
                "median config + batching".into(),
                r_gang.mean_delay_secs(),
                r_gang.mean_f1(),
            ),
            (
                "METIS (joint adaptation)".into(),
                r_full.mean_delay_secs(),
                r_full.mean_f1(),
            ),
        ];
        for (label, delay, f1) in &rows {
            println!(
                "  {:<36} {:>7.2}s  ({:.2}x vs fixed)  F1 {:.3}",
                label,
                delay,
                base / delay.max(1e-9),
                f1
            );
        }

        // Where the seconds went: mean wall time per pipeline stage.
        println!(
            "  stage breakdown (mean s):           {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8}",
            "profile", "decide", "retrieve", "queue", "prefill", "decode", "total"
        );
        stage_row("vLLM fixed best-quality", &qr.stage_breakdown());
        stage_row("profiler + median", &r_median.stage_breakdown());
        stage_row("median + batching", &r_gang.stage_breakdown());
        stage_row("METIS (joint)", &r_full.stage_breakdown());

        report.cells.push(
            qr.cell_report(format!("{}/vllm_fixed", kind.name()), RUN_SEED)
                .knob("dataset", kind.name())
                .knob("config", qc.label()),
        );
        for cell in &variants {
            report.cells.push(
                cell.value
                    .cell_report(&cell.id, cell.seed)
                    .knob("dataset", kind.name()),
            );
        }
    }
    emit(&report);
}

//! The perf-regression gate: compares a freshly emitted [`BenchReport`]
//! against a committed baseline with per-metric, direction-aware relative
//! tolerances.
//!
//! Bench runs are deterministic (pinned seeds, virtual time), so baseline
//! and candidate agree bit-for-bit until the code's performance behavior
//! actually changes. The tolerances exist to absorb small *intentional*
//! drift (a calibration tweak, a float-order change) without a baseline
//! refresh; anything beyond them fails CI and must either be fixed or be
//! acknowledged by regenerating `baselines/` in the same PR.
//!
//! Direction matters: latency and retrieval may only grow by their
//! tolerance, F1 and throughput may only shrink by theirs. Improvements
//! never fail the gate (they are reported so the author refreshes the
//! baseline and banks the win).

use metis_metrics::{BenchReport, CellReport};

/// Per-metric tolerances. Relative fractions compare against the baseline
/// value; floors keep near-zero metrics from tripping on noise-scale
/// absolute differences.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Allowed relative growth of latency metrics (mean/p50/p99).
    pub latency_frac: f64,
    /// Absolute latency slack in seconds added on top of the fraction.
    pub latency_floor_secs: f64,
    /// Allowed relative growth of mean retrieval latency.
    pub retrieval_frac: f64,
    /// Absolute retrieval slack in seconds.
    pub retrieval_floor_secs: f64,
    /// Allowed absolute F1 drop.
    pub f1_abs: f64,
    /// Allowed relative throughput drop.
    pub throughput_frac: f64,
    /// Allowed absolute retrieval-recall drop (recall is a 0–1 quality
    /// metric like F1, so the slack is absolute, not relative).
    pub recall_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Self {
            latency_frac: 0.10,
            latency_floor_secs: 0.05,
            retrieval_frac: 0.10,
            retrieval_floor_secs: 0.002,
            f1_abs: 0.02,
            throughput_frac: 0.10,
            recall_abs: 0.02,
        }
    }
}

/// One gate violation: which cell and metric, and by how much.
#[derive(Clone, Debug, PartialEq)]
pub struct GateFinding {
    /// Cell id (or `"<report>"` for report-level mismatches).
    pub cell: String,
    /// Metric name.
    pub metric: String,
    /// What the finding is.
    pub message: String,
}

impl std::fmt::Display for GateFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} :: {} — {}", self.cell, self.metric, self.message)
    }
}

/// Outcome of one gate run: hard failures plus informational improvements.
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// Regressions beyond tolerance — any entry fails the gate.
    pub regressions: Vec<GateFinding>,
    /// Improvements beyond tolerance — informational; refresh the baseline
    /// to bank them.
    pub improvements: Vec<GateFinding>,
    /// Metric comparisons performed.
    pub checked: usize,
    /// Cells skipped because they were served by the realtime driver: their
    /// numbers carry wall-clock scheduling jitter, so they are not
    /// regression-gateable against a deterministic baseline.
    pub skipped_realtime: usize,
}

impl GateOutcome {
    /// Whether the candidate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `candidate` against `baseline` under `tol`.
pub fn check(baseline: &BenchReport, candidate: &BenchReport, tol: &Tolerances) -> GateOutcome {
    let mut out = GateOutcome::default();
    let report_finding = |metric: &str, message: String| GateFinding {
        cell: "<report>".into(),
        metric: metric.into(),
        message,
    };
    if baseline.experiment != candidate.experiment {
        out.regressions.push(report_finding(
            "experiment",
            format!(
                "baseline is '{}' but candidate is '{}'",
                baseline.experiment, candidate.experiment
            ),
        ));
        return out;
    }
    for base_cell in &baseline.cells {
        // Realtime cells (marked by the `driver` knob the runner stamps on
        // them) are excluded from gating: wall-clock pacing makes their
        // numbers jittery, and the parity bench — not this gate — is what
        // holds them close to the simulator. Deterministic sim cells carry
        // no marker and are always compared.
        if is_realtime(base_cell) {
            out.skipped_realtime += 1;
            continue;
        }
        let Some(cand_cell) = candidate.cell(&base_cell.id) else {
            out.regressions.push(GateFinding {
                cell: base_cell.id.clone(),
                metric: "cell".into(),
                message: "present in baseline but missing from candidate".into(),
            });
            continue;
        };
        if is_realtime(cand_cell) {
            out.skipped_realtime += 1;
            continue;
        }
        check_cell(base_cell, cand_cell, tol, &mut out);
    }
    out
}

/// Whether a cell was served by the realtime driver (the runner stamps
/// `driver = realtime` on such cells; sim cells carry no marker).
fn is_realtime(cell: &CellReport) -> bool {
    cell.knob_value("driver") == Some("realtime")
}

fn check_cell(base: &CellReport, cand: &CellReport, tol: &Tolerances, out: &mut GateOutcome) {
    let cell = &base.id;
    if base.queries != cand.queries || base.seed != cand.seed {
        out.regressions.push(GateFinding {
            cell: cell.clone(),
            metric: "shape".into(),
            message: format!(
                "cells are not comparable: baseline ran {} queries under seed {}, \
                 candidate {} queries under seed {} (same METIS_BENCH_QUERIES?)",
                base.queries, base.seed, cand.queries, cand.seed
            ),
        });
        return;
    }
    let mut higher_is_worse = |metric: &str, b: f64, c: f64, frac: f64, floor: f64| {
        out.checked += 1;
        let allowed = b * (1.0 + frac) + floor;
        let improved_below = b * (1.0 - frac) - floor;
        if c > allowed {
            out.regressions.push(GateFinding {
                cell: cell.clone(),
                metric: metric.into(),
                message: format!("{c:.4} exceeds baseline {b:.4} (allowed ≤ {allowed:.4})"),
            });
        } else if c < improved_below {
            out.improvements.push(GateFinding {
                cell: cell.clone(),
                metric: metric.into(),
                message: format!("{c:.4} improves on baseline {b:.4}"),
            });
        }
    };
    higher_is_worse(
        "latency.mean",
        base.latency.mean,
        cand.latency.mean,
        tol.latency_frac,
        tol.latency_floor_secs,
    );
    higher_is_worse(
        "latency.p50",
        base.latency.p50(),
        cand.latency.p50(),
        tol.latency_frac,
        tol.latency_floor_secs,
    );
    higher_is_worse(
        "latency.p99",
        base.latency.p99(),
        cand.latency.p99(),
        tol.latency_frac,
        tol.latency_floor_secs,
    );
    higher_is_worse(
        "retrieval.mean",
        base.retrieval.mean,
        cand.retrieval.mean,
        tol.retrieval_frac,
        tol.retrieval_floor_secs,
    );
    higher_is_worse(
        "retrieval.p50",
        base.retrieval.p50(),
        cand.retrieval.p50(),
        tol.retrieval_frac,
        tol.retrieval_floor_secs,
    );

    let mut lower_is_worse = |metric: &str, b: f64, c: f64, slack: f64, relative: bool| {
        out.checked += 1;
        let (allowed, improved_above) = if relative {
            (b * (1.0 - slack), b * (1.0 + slack))
        } else {
            (b - slack, b + slack)
        };
        if c < allowed {
            out.regressions.push(GateFinding {
                cell: cell.clone(),
                metric: metric.into(),
                message: format!("{c:.4} falls below baseline {b:.4} (allowed ≥ {allowed:.4})"),
            });
        } else if c > improved_above {
            out.improvements.push(GateFinding {
                cell: cell.clone(),
                metric: metric.into(),
                message: format!("{c:.4} improves on baseline {b:.4}"),
            });
        }
    };
    lower_is_worse("f1", base.f1, cand.f1, tol.f1_abs, false);
    lower_is_worse(
        "throughput_qps",
        base.throughput_qps,
        cand.throughput_qps,
        tol.throughput_frac,
        true,
    );
    lower_is_worse(
        "retrieval_recall",
        base.retrieval_recall,
        cand.retrieval_recall,
        tol.recall_abs,
        false,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_metrics::{LatencySummary, SummaryStats};

    fn report_with(latency_mean_scale: f64, f1: f64) -> BenchReport {
        let mut r = BenchReport::new("gate_test", "t");
        let lat = LatencySummary::new(vec![
            1.0 * latency_mean_scale,
            2.0 * latency_mean_scale,
            4.0 * latency_mean_scale,
        ]);
        r.cells.push(CellReport {
            queries: 3,
            f1,
            latency: SummaryStats::of(&lat),
            retrieval: SummaryStats::of(&LatencySummary::new(vec![0.01, 0.02, 0.03])),
            throughput_qps: 1.0 / latency_mean_scale,
            ..CellReport::new("cell/a", 42)
        });
        r
    }

    #[test]
    fn identical_reports_pass() {
        let b = report_with(1.0, 0.6);
        let out = check(&b, &b.clone(), &Tolerances::default());
        assert!(out.passed(), "{:?}", out.regressions);
        assert!(out.improvements.is_empty());
        assert!(out.checked >= 6);
    }

    #[test]
    fn latency_regression_beyond_tolerance_fails() {
        let base = report_with(1.0, 0.6);
        let worse = report_with(1.5, 0.6);
        let out = check(&base, &worse, &Tolerances::default());
        assert!(!out.passed());
        assert!(
            out.regressions.iter().any(|f| f.metric == "latency.mean"),
            "{:?}",
            out.regressions
        );
        // Throughput fell with it.
        assert!(out.regressions.iter().any(|f| f.metric == "throughput_qps"));
    }

    #[test]
    fn f1_drop_beyond_tolerance_fails_but_gain_is_informational() {
        let base = report_with(1.0, 0.6);
        let out = check(&base, &report_with(1.0, 0.5), &Tolerances::default());
        assert!(out.regressions.iter().any(|f| f.metric == "f1"));
        let out = check(&base, &report_with(1.0, 0.7), &Tolerances::default());
        assert!(out.passed(), "improvements never fail the gate");
        assert!(out.improvements.iter().any(|f| f.metric == "f1"));
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = report_with(1.0, 0.6);
        let out = check(&base, &report_with(1.02, 0.595), &Tolerances::default());
        assert!(out.passed(), "{:?}", out.regressions);
    }

    #[test]
    fn retrieval_p50_and_recall_are_gated_direction_aware() {
        let mut base = report_with(1.0, 0.6);
        base.cells[0].retrieval_recall = 0.95;
        // Slower retrieval p50 beyond tolerance fails.
        let mut worse = base.clone();
        worse.cells[0].retrieval = SummaryStats::of(&LatencySummary::new(vec![0.05, 0.06, 0.07]));
        let out = check(&base, &worse, &Tolerances::default());
        assert!(
            out.regressions.iter().any(|f| f.metric == "retrieval.p50"),
            "{:?}",
            out.regressions
        );
        // A recall drop beyond tolerance fails; a gain is informational.
        let mut lower = base.clone();
        lower.cells[0].retrieval_recall = 0.80;
        let out = check(&base, &lower, &Tolerances::default());
        assert!(
            out.regressions
                .iter()
                .any(|f| f.metric == "retrieval_recall"),
            "{:?}",
            out.regressions
        );
        let mut higher = base.clone();
        higher.cells[0].retrieval_recall = 1.0;
        let out = check(&base, &higher, &Tolerances::default());
        assert!(out.passed(), "{:?}", out.regressions);
        assert!(out
            .improvements
            .iter()
            .any(|f| f.metric == "retrieval_recall"));
    }

    #[test]
    fn realtime_cells_are_skipped_not_gated() {
        let base = report_with(1.0, 0.6);
        // A wildly different candidate would fail the gate — unless the
        // cell is marked as realtime-served, in which case it is skipped.
        let mut jittery = report_with(3.0, 0.4);
        jittery.cells[0]
            .knobs
            .push(("driver".into(), "realtime".into()));
        let out = check(&base, &jittery, &Tolerances::default());
        assert!(out.passed(), "{:?}", out.regressions);
        assert_eq!(out.skipped_realtime, 1);
        assert_eq!(out.checked, 0);
        // A realtime baseline cell is equally non-comparable.
        let mut rt_base = report_with(1.0, 0.6);
        rt_base.cells[0]
            .knobs
            .push(("driver".into(), "realtime".into()));
        let out = check(&rt_base, &report_with(3.0, 0.4), &Tolerances::default());
        assert!(out.passed(), "{:?}", out.regressions);
        assert_eq!(out.skipped_realtime, 1);
        // An unmarked (sim) cell still fails as before.
        let out = check(&base, &report_with(3.0, 0.4), &Tolerances::default());
        assert!(!out.passed());
    }

    #[test]
    fn missing_cells_and_shape_mismatches_fail_loudly() {
        let base = report_with(1.0, 0.6);
        let mut empty = BenchReport::new("gate_test", "t");
        let out = check(&base, &empty, &Tolerances::default());
        assert!(out
            .regressions
            .iter()
            .any(|f| f.message.contains("missing from candidate")));
        // Same cells, different query count: incomparable.
        empty = base.clone();
        empty.cells[0].queries = 99;
        let out = check(&base, &empty, &Tolerances::default());
        assert!(out.regressions.iter().any(|f| f.metric == "shape"));
        // Different experiment entirely.
        let other = BenchReport::new("other_bench", "t");
        let out = check(&base, &other, &Tolerances::default());
        assert!(out.regressions.iter().any(|f| f.metric == "experiment"));
    }
}

//! The generic parallel sweep driver every bench target runs on.
//!
//! A [`Sweep`] is a named list of cells — one closure per (config × seed ×
//! load) point — executed across [`std::thread::scope`] workers. Two
//! properties make its output fit for committed baselines:
//!
//! * **Deterministic per-cell seeds** — each cell's seed is derived from
//!   the sweep's base seed and the cell *id* ([`cell_seed`]), not from
//!   insertion order or thread timing, so inserting a new cell never
//!   reshuffles the seeds of existing ones.
//! * **Deterministic ordering** — results come back in insertion order
//!   regardless of which worker finished first.
//!
//! Cells usually produce a [`RunResult`](metis_core::RunResult) (lowered to
//! a report cell via `RunResult::cell_report`) but the driver is generic:
//! micro-benches and profiler sweeps return their own cell types.

use std::sync::Mutex;

use crate::RUN_SEED;

/// FNV-1a over a cell id — the stable id → seed-stream mapping.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the base-seed/id mix.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic seed a cell named `id` runs with under `base`.
pub fn cell_seed(base: u64, id: &str) -> u64 {
    splitmix(base ^ fnv1a(id))
}

/// One executed cell: its id, the seed it ran with, and what it produced.
#[derive(Clone, Debug)]
pub struct SweepCell<T> {
    /// The cell id (unique within the sweep).
    pub id: String,
    /// The derived seed the cell's closure received.
    pub seed: u64,
    /// The cell's output.
    pub value: T,
}

struct Planned<'env, T> {
    id: String,
    /// Explicit seed (paired cells); `None` derives from the id.
    seed: Option<u64>,
    run: Box<dyn FnOnce(u64) -> T + Send + 'env>,
}

/// A named set of cells executed in parallel with deterministic seeds and
/// output order. See the [module docs](self) for the guarantees.
pub struct Sweep<'env, T> {
    name: String,
    base_seed: u64,
    cells: Vec<Planned<'env, T>>,
}

impl<'env, T: Send> Sweep<'env, T> {
    /// An empty sweep seeded with the bench-standard [`RUN_SEED`].
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            base_seed: RUN_SEED,
            cells: Vec::new(),
        }
    }

    /// Overrides the base seed (cells re-derive from it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Adds one cell. `f` receives the cell's derived seed.
    ///
    /// # Panics
    ///
    /// Panics if `id` repeats within the sweep — duplicate ids would make
    /// baseline comparison ambiguous.
    pub fn cell(mut self, id: impl Into<String>, f: impl FnOnce(u64) -> T + Send + 'env) -> Self {
        self.push(id.into(), None, Box::new(f));
        self
    }

    /// Adds one cell that runs under an *explicit* seed instead of an
    /// id-derived one. Use this for paired comparisons: cells that are
    /// read against each other (systems at the same load, policies on the
    /// same burst) must share one seed so they see the same workload
    /// realization — common random numbers — and the difference measured
    /// is the system's, not the arrival sequence's. The recorded
    /// [`SweepCell::seed`] is always the seed the cell actually ran with.
    ///
    /// # Panics
    ///
    /// Panics if `id` repeats within the sweep.
    pub fn cell_with_seed(
        mut self,
        id: impl Into<String>,
        seed: u64,
        f: impl FnOnce(u64) -> T + Send + 'env,
    ) -> Self {
        self.push(id.into(), Some(seed), Box::new(f));
        self
    }

    fn push(
        &mut self,
        id: String,
        seed: Option<u64>,
        run: Box<dyn FnOnce(u64) -> T + Send + 'env>,
    ) {
        assert!(
            self.cells.iter().all(|c| c.id != id),
            "sweep '{}': duplicate cell id '{id}'",
            self.name
        );
        self.cells.push(Planned { id, seed, run });
    }

    /// Number of planned cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are planned.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell across scoped threads; results return in insertion
    /// order with their derived seeds.
    pub fn run(self) -> Vec<SweepCell<T>> {
        let base = self.base_seed;
        let slots: Vec<Mutex<Option<(u64, T)>>> =
            self.cells.iter().map(|_| Mutex::new(None)).collect();
        let ids: Vec<String> = self.cells.iter().map(|c| c.id.clone()).collect();
        std::thread::scope(|s| {
            for (planned, slot) in self.cells.into_iter().zip(&slots) {
                let seed = planned.seed.unwrap_or_else(|| cell_seed(base, &planned.id));
                s.spawn(move || {
                    let value = (planned.run)(seed);
                    *slot.lock().expect("poisoned") = Some((seed, value));
                });
            }
        });
        ids.into_iter()
            .zip(slots)
            .map(|(id, slot)| {
                let (seed, value) = slot
                    .into_inner()
                    .expect("poisoned")
                    .expect("scope joined every worker");
                SweepCell { id, seed, value }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_insertion_order() {
        // A channel rendezvous (not a timed sleep) forces the first-inserted
        // cell to finish strictly after the second: "slow" blocks until
        // "fast" has produced its value, so insertion order is provably not
        // completion order.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let sweep = Sweep::new("t")
            .cell("slow", move |_| {
                rx.recv().expect("fast cell signals before finishing");
                1u32
            })
            .cell("fast", move |_| {
                tx.send(()).expect("slow cell is waiting");
                2u32
            });
        let out = sweep.run();
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].id.as_str(), out[0].value), ("slow", 1));
        assert_eq!((out[1].id.as_str(), out[1].value), ("fast", 2));
    }

    #[test]
    fn seeds_depend_on_id_not_insertion_order() {
        let run = |ids: &[&str]| -> Vec<(String, u64)> {
            let mut s = Sweep::new("t");
            for &id in ids {
                s = s.cell(id, |seed| seed);
            }
            s.run().into_iter().map(|c| (c.id, c.value)).collect()
        };
        let a = run(&["x", "y"]);
        let b = run(&["y", "z", "x"]);
        let seed_of = |cells: &[(String, u64)], id: &str| {
            cells.iter().find(|(i, _)| i == id).map(|(_, s)| *s)
        };
        assert_eq!(seed_of(&a, "x"), seed_of(&b, "x"), "x keeps its seed");
        assert_eq!(seed_of(&a, "y"), seed_of(&b, "y"), "y keeps its seed");
        assert_ne!(seed_of(&a, "x"), seed_of(&a, "y"), "distinct per id");
        // And the closure receives exactly the advertised derivation.
        assert_eq!(seed_of(&a, "x"), Some(cell_seed(crate::RUN_SEED, "x")));
    }

    #[test]
    fn base_seed_shifts_every_cell() {
        let a = cell_seed(1, "cell");
        let b = cell_seed(2, "cell");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate cell id")]
    fn duplicate_ids_are_rejected() {
        let _ = Sweep::new("t").cell("a", |_| 0u8).cell("a", |_| 1u8);
    }

    #[test]
    fn explicit_seeds_pair_cells_and_are_recorded_truthfully() {
        let out = Sweep::new("t")
            .cell_with_seed("sys_a", 42, |seed| seed)
            .cell_with_seed("sys_b", 42, |seed| seed)
            .cell("unpaired", |seed| seed)
            .run();
        assert_eq!(out[0].value, 42, "closure receives the explicit seed");
        assert_eq!(out[1].value, 42, "paired cells share the realization");
        assert_eq!(out[0].seed, 42, "recorded seed is the one used");
        assert_eq!(out[2].seed, out[2].value, "derived cells record theirs");
        assert_ne!(out[2].seed, 42);
    }
}

//! Shared helpers for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated bench
//! target under `benches/`; this library provides the common machinery:
//! calibrated workload rates, parallel run drivers, fixed-configuration
//! sweeps, Pareto filtering, and uniform result printing.
//!
//! ## Rate calibration
//!
//! The paper sends 200 queries per dataset at an average of 2/s to its A40
//! testbed. Our simulated A40 (analytical roofline, AWQ kernels) sustains a
//! different absolute prefill throughput, so each dataset runs at the rate
//! that puts METIS at roughly 60% utilization — preserving the paper's
//! contention regime, which is what the relative results depend on. The
//! rates are printed with every experiment.

pub mod gate;
pub mod reportio;
pub mod sweep;

pub use gate::{check as gate_check, GateFinding, GateOutcome, Tolerances};
pub use reportio::{emit, new_report, report_dir, REPORT_DIR_ENV};
pub use sweep::{cell_seed, Sweep, SweepCell};

use metis_core::{
    DriverSpec, MetisOptions, RagConfig, RunConfig, RunResult, Runner, SynthesisPlan, SystemKind,
};
use metis_datasets::{build_dataset, poisson_arrivals, Dataset, DatasetKind};
use metis_engine::{
    Engine, EngineConfig, GroupId, LlmRequest, Priority, RequestId, RouterPolicy, Stage,
};
use metis_llm::{nanos_to_secs, GpuCluster, LatencyModel, ModelSpec, Nanos};
use metis_profiler::ProfilerKind;

/// Default seed for dataset construction in benches.
pub const DATASET_SEED: u64 = 20_241_016;
/// Default seed for run stochasticity in benches.
pub const RUN_SEED: u64 = 99;

/// Arrival rate (queries/second) at which the simulated A40 serves METIS at
/// ~60% utilization for each dataset.
pub fn base_qps(kind: DatasetKind) -> f64 {
    match kind {
        DatasetKind::Squad => 1.6,
        DatasetKind::Musique => 0.55,
        DatasetKind::FinSec => 0.20,
        DatasetKind::Qmsum => 0.17,
    }
}

/// Builds the standard bench dataset for `kind`.
pub fn dataset(kind: DatasetKind, n: usize) -> Dataset {
    build_dataset(kind, n, DATASET_SEED)
}

/// Runs `system` over `dataset` with Poisson arrivals at `qps`.
pub fn run(dataset: &Dataset, system: SystemKind, qps: f64, seed: u64) -> RunResult {
    run_replicated(dataset, system, qps, seed, 1, RouterPolicy::RoundRobin)
}

/// Runs `system` across `replicas` engine replicas behind `router`.
pub fn run_replicated(
    dataset: &Dataset,
    system: SystemKind,
    qps: f64,
    seed: u64,
    replicas: usize,
    router: RouterPolicy,
) -> RunResult {
    let arrivals = poisson_arrivals(seed ^ 0xA11, qps, dataset.queries.len());
    run_with_arrivals(dataset, system, arrivals, seed, replicas, router, None)
}

/// Runs `system` over explicit arrival times across `replicas` replicas,
/// with an optional per-replica KV working-memory cap in bytes — the
/// driver for arrival-process sweeps (bursty/heavy-tailed workloads) where
/// the process, not a Poisson rate, defines the load.
pub fn run_with_arrivals(
    dataset: &Dataset,
    system: SystemKind,
    arrivals: Vec<Nanos>,
    seed: u64,
    replicas: usize,
    router: RouterPolicy,
    kv_cap_bytes: Option<u64>,
) -> RunResult {
    let mut cfg = RunConfig::standard(system, arrivals, seed).replicated(replicas, router);
    if kv_cap_bytes.is_some() {
        cfg.engine.kv_pool_bytes_cap = kv_cap_bytes;
    }
    Runner::new(dataset, cfg).run()
}

/// Runs `system` over `dataset` with Poisson arrivals at `qps` on an
/// explicit execution driver — the same workload [`run_replicated`] builds,
/// but served by either the deterministic simulator or the live realtime
/// driver (the parity bench runs both and compares).
pub fn run_with_driver(
    dataset: &Dataset,
    system: SystemKind,
    qps: f64,
    seed: u64,
    replicas: usize,
    router: RouterPolicy,
    driver: DriverSpec,
) -> RunResult {
    let arrivals = poisson_arrivals(seed ^ 0xA11, qps, dataset.queries.len());
    let cfg = RunConfig::standard(system, arrivals, seed)
        .replicated(replicas, router)
        .with_driver(driver);
    Runner::new(dataset, cfg).run()
}

/// Bench scale override for CI smoke runs: `METIS_BENCH_QUERIES` caps the
/// per-experiment query count (default: the target's full size).
pub fn bench_queries(default: usize) -> usize {
    std::env::var("METIS_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Runs with explicit arrivals and model/cluster overrides.
pub fn run_on(
    dataset: &Dataset,
    system: SystemKind,
    arrivals: Vec<Nanos>,
    seed: u64,
    model: ModelSpec,
    cluster: GpuCluster,
    closed_loop: bool,
) -> RunResult {
    let mut cfg = RunConfig::standard(system, arrivals, seed);
    cfg.model = model;
    cfg.cluster = cluster;
    cfg.closed_loop = closed_loop;
    Runner::new(dataset, cfg).run()
}

/// One printed result row.
#[derive(Clone, Debug)]
pub struct Row {
    /// System / configuration label.
    pub label: String,
    /// Mean end-to-end delay (s).
    pub delay: f64,
    /// Median delay (s).
    pub p50: f64,
    /// Tail delay (s).
    pub p99: f64,
    /// Mean token F1.
    pub f1: f64,
}

impl Row {
    /// Builds a row from a run result.
    pub fn from_run(label: impl Into<String>, r: &RunResult) -> Self {
        let lat = r.latency();
        Self {
            label: label.into(),
            delay: lat.mean(),
            p50: lat.p50(),
            p99: lat.p99(),
            f1: r.mean_f1(),
        }
    }
}

/// Prints an experiment header with the paper's expectation.
pub fn header(id: &str, title: &str, paper: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("paper expectation: {paper}");
    println!("================================================================");
}

/// Prints a uniform row table.
pub fn print_rows(rows: &[Row]) {
    println!(
        "  {:<34} {:>9} {:>9} {:>9} {:>7}",
        "system/config", "mean(s)", "p50(s)", "p99(s)", "F1"
    );
    for r in rows {
        println!(
            "  {:<34} {:>9.2} {:>9.2} {:>9.2} {:>7.3}",
            r.label, r.delay, r.p50, r.p99, r.f1
        );
    }
}

/// The compact fixed-configuration menu baselines sweep in the benches.
pub fn fixed_menu() -> Vec<RagConfig> {
    vec![
        RagConfig::map_rerank(4),
        RagConfig::stuff(4),
        RagConfig::stuff(8),
        RagConfig::stuff(16),
        RagConfig::map_reduce(4, 100),
        RagConfig::map_reduce(8, 100),
        RagConfig::map_reduce(12, 100),
        RagConfig::map_reduce(16, 200),
        RagConfig::map_reduce(24, 200),
    ]
}

/// Runs every fixed config in `menu` (in parallel, on the [`Sweep`]
/// driver, deterministic ordering) and returns `(config, result)` pairs.
/// Every config runs under the same `seed`: the menu is a paired
/// comparison (`best_quality_fixed` reads the cells against each other),
/// so all configs must see the same arrival realization.
pub fn sweep_fixed(
    dataset: &Dataset,
    menu: &[RagConfig],
    qps: f64,
    seed: u64,
    parrot: bool,
) -> Vec<(RagConfig, RunResult)> {
    let mut sweep = Sweep::new("sweep_fixed").with_seed(seed);
    for (i, &config) in menu.iter().enumerate() {
        // The index disambiguates duplicate configs some callers pass.
        sweep = sweep.cell_with_seed(format!("{i}/{}", config.label()), seed, move |seed| {
            let system = if parrot {
                SystemKind::Parrot { config }
            } else {
                SystemKind::VllmFixed { config }
            };
            (config, run(dataset, system, qps, seed))
        });
    }
    let mut v: Vec<(RagConfig, RunResult)> = sweep.run().into_iter().map(|c| c.value).collect();
    v.sort_by_key(|(c, _)| (c.synthesis.name(), c.num_chunks, c.intermediate_length));
    v
}

/// Picks, from a sweep, the fixed configuration with the highest F1
/// (ties broken by lower delay) — the paper's "fixed config of closest
/// quality" comparison point.
pub fn best_quality_fixed(sweep: &[(RagConfig, RunResult)]) -> &(RagConfig, RunResult) {
    sweep
        .iter()
        .max_by(|a, b| {
            let fa = a.1.mean_f1();
            let fb = b.1.mean_f1();
            fa.total_cmp(&fb)
                .then(b.1.mean_delay_secs().total_cmp(&a.1.mean_delay_secs()))
        })
        .expect("non-empty sweep")
}

/// Picks the fixed configuration whose delay is closest to `target_delay`
/// (the paper's "fixed config of similar delay" comparison point).
pub fn closest_delay_fixed(
    sweep: &[(RagConfig, RunResult)],
    target_delay: f64,
) -> &(RagConfig, RunResult) {
    sweep
        .iter()
        .min_by(|a, b| {
            let da = (a.1.mean_delay_secs() - target_delay).abs();
            let db = (b.1.mean_delay_secs() - target_delay).abs();
            da.total_cmp(&db)
        })
        .expect("non-empty sweep")
}

/// Returns the indices of the Pareto frontier of `(delay, f1)` points
/// (minimize delay, maximize F1).
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut front = Vec::new();
    for (i, &(d, f)) in points.iter().enumerate() {
        let dominated = points
            .iter()
            .enumerate()
            .any(|(j, &(dj, fj))| j != i && dj <= d && fj >= f && (dj < d || fj > f));
        if !dominated {
            front.push(i);
        }
    }
    front
}

/// Executes one synthesis plan on an otherwise idle engine and returns its
/// end-to-end delay in seconds (used by the per-query knob sweeps, where
/// contention would only blur the configuration effect).
pub fn isolated_delay(plan: &SynthesisPlan, model: ModelSpec, cluster: GpuCluster) -> f64 {
    let lat = LatencyModel::new(model, cluster);
    let mut engine = Engine::new(lat, EngineConfig::default());
    for (i, c) in plan.map_calls.iter().enumerate() {
        engine.submit(LlmRequest {
            id: RequestId(i as u64),
            group: GroupId(0),
            stage: Stage::Map,
            prompt_tokens: c.prompt_tokens,
            output_tokens: c.output_tokens,
            cached_prompt_tokens: 0,
            arrival: 0,
            priority: Priority::Standard,
        });
    }
    let done = engine.run_until_idle();
    let mut finish = done.iter().map(|c| c.finish).max().unwrap_or(0);
    if let Some(reduce) = plan.reduce_call {
        engine.submit(LlmRequest {
            id: RequestId(1_000_000),
            group: GroupId(0),
            stage: Stage::Reduce,
            prompt_tokens: reduce.prompt_tokens,
            output_tokens: reduce.output_tokens,
            cached_prompt_tokens: 0,
            arrival: finish,
            priority: Priority::Standard,
        });
        finish = engine
            .run_until_idle()
            .iter()
            .map(|c| c.finish)
            .max()
            .unwrap_or(finish);
    }
    nanos_to_secs(finish)
}

/// Standard METIS system under test.
pub fn metis() -> SystemKind {
    SystemKind::Metis(MetisOptions::full())
}

/// Standard AdaptiveRAG\* baseline.
pub fn adaptive_rag() -> SystemKind {
    SystemKind::AdaptiveRag {
        profiler: ProfilerKind::Gpt4o,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_keeps_only_undominated() {
        let pts = vec![(1.0, 0.5), (2.0, 0.6), (3.0, 0.55), (0.5, 0.2)];
        let front = pareto_front(&pts);
        assert!(front.contains(&0));
        assert!(front.contains(&1));
        assert!(!front.contains(&2)); // Dominated by (2.0, 0.6).
        assert!(front.contains(&3));
    }

    #[test]
    fn fixed_menu_is_diverse() {
        let menu = fixed_menu();
        assert!(menu.len() >= 8);
    }

    #[test]
    fn sweep_runs_in_parallel_and_sorts() {
        let d = dataset(DatasetKind::Squad, 10);
        let menu = vec![RagConfig::stuff(2), RagConfig::stuff(4)];
        let sweep = sweep_fixed(&d, &menu, 2.0, 1, false);
        assert_eq!(sweep.len(), 2);
        assert!(sweep[0].0.num_chunks < sweep[1].0.num_chunks);
        let best = best_quality_fixed(&sweep);
        assert!(best.1.mean_f1() >= sweep[0].1.mean_f1().min(sweep[1].1.mean_f1()));
    }
}

//! `perf_check` — the CI perf gate's comparator.
//!
//! ```sh
//! perf_check <baseline.json> <candidate.json> \
//!     [--latency-tol 0.10] [--retrieval-tol 0.10] \
//!     [--f1-tol 0.02] [--throughput-tol 0.10] [--recall-tol 0.02]
//! ```
//!
//! Loads two [`BenchReport`] documents and applies the direction-aware
//! per-metric tolerances of [`metis_bench::gate`]. Exit code 0 means the
//! candidate is within tolerance of the baseline; 1 means a regression (or
//! an unreadable/incomparable report). Improvements beyond tolerance are
//! printed but never fail — refresh `baselines/` to bank them.

use std::process::ExitCode;

use metis_bench::gate::{check, Tolerances};
use metis_metrics::BenchReport;

const USAGE: &str = "\
usage: perf_check <baseline.json> <candidate.json>
           [--latency-tol FRAC] [--retrieval-tol FRAC]
           [--f1-tol ABS] [--throughput-tol FRAC] [--recall-tol ABS]
";

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("{path}: schema error: {e}"))
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut tol = Tolerances::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut frac = |tgt: &mut f64| -> Result<(), String> {
            i += 1;
            let v = args
                .get(i)
                .ok_or_else(|| format!("missing value for {arg}"))?;
            *tgt = v
                .parse::<f64>()
                .map_err(|e| format!("bad value for {arg}: {e}"))?;
            if !tgt.is_finite() || *tgt < 0.0 {
                return Err(format!("{arg} must be a non-negative number"));
            }
            Ok(())
        };
        match arg {
            "--latency-tol" => frac(&mut tol.latency_frac)?,
            "--retrieval-tol" => frac(&mut tol.retrieval_frac)?,
            "--f1-tol" => frac(&mut tol.f1_abs)?,
            "--throughput-tol" => frac(&mut tol.throughput_frac)?,
            "--recall-tol" => frac(&mut tol.recall_abs)?,
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            path => paths.push(path),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err("expected exactly two report paths".into());
    };
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;
    println!(
        "perf gate: {} — {} baseline cells vs {} candidate cells",
        baseline.experiment,
        baseline.cells.len(),
        candidate.cells.len()
    );
    let outcome = check(&baseline, &candidate, &tol);
    for f in &outcome.improvements {
        println!("  improved: {f}");
    }
    for f in &outcome.regressions {
        println!("  REGRESSION: {f}");
    }
    println!(
        "  {} metric comparisons, {} regressions, {} improvements → {}",
        outcome.checked,
        outcome.regressions.len(),
        outcome.improvements.len(),
        if outcome.passed() { "PASS" } else { "FAIL" }
    );
    if !outcome.improvements.is_empty() && outcome.passed() {
        println!(
            "  note: improvements beyond tolerance — refresh baselines/ to \
             tighten the gate around the new numbers"
        );
    }
    Ok(outcome.passed())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

//! Report assembly and emission for bench targets.
//!
//! Every bench target ends with [`emit`]: the human-readable table it
//! already printed is joined by a machine-readable JSON artifact under
//! `target/bench-reports/<experiment>.json` (override the directory with
//! `METIS_BENCH_REPORT_DIR`). CI uploads these artifacts and the perf gate
//! diffs a pinned subset against `baselines/`.

use std::path::PathBuf;

use metis_metrics::BenchReport;

use crate::{DATASET_SEED, RUN_SEED};

/// Environment variable overriding the report output directory.
pub const REPORT_DIR_ENV: &str = "METIS_BENCH_REPORT_DIR";

/// Where reports land: `$METIS_BENCH_REPORT_DIR`, else
/// `$CARGO_TARGET_DIR/bench-reports`, else the workspace
/// `target/bench-reports` (resolved from this crate's manifest dir, so it
/// works regardless of the cwd cargo gives bench binaries).
pub fn report_dir() -> PathBuf {
    if let Ok(dir) = std::env::var(REPORT_DIR_ENV) {
        return PathBuf::from(dir);
    }
    if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(target).join("bench-reports");
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-reports")
}

/// Starts a report for one bench target, stamped with the bench-standard
/// seeds and the effective `METIS_BENCH_QUERIES` override (so a smoke-run
/// report can never be mistaken for a full-scale one).
pub fn new_report(experiment: &str, title: &str) -> BenchReport {
    let mut report = BenchReport::new(experiment, title);
    report.dataset_seed = DATASET_SEED;
    report.run_seed = RUN_SEED;
    if let Ok(q) = std::env::var("METIS_BENCH_QUERIES") {
        report = report.knob("METIS_BENCH_QUERIES", q);
    }
    report
}

/// Writes `report` to `report_dir()/<experiment>.json` and prints the
/// path. Returns the written path.
///
/// # Panics
///
/// Panics when the directory or file cannot be written — a bench that
/// silently loses its artifact would defeat the CI gate.
pub fn emit(report: &BenchReport) -> PathBuf {
    let dir = report_dir();
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join(format!("{}.json", report.experiment));
    std::fs::write(&path, report.render())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let path = path.canonicalize().unwrap_or(path);
    println!(
        "\nreport: {} ({} cells)",
        path.display(),
        report.cells.len()
    );
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_reports_parse_back() {
        let dir = std::env::temp_dir().join(format!("metis-report-test-{}", std::process::id()));
        // Scope the override to this test via a direct write (env vars are
        // process-global; the writer takes the dir from the path instead).
        let mut report = new_report("emit_unit_test", "t");
        report.cells.push(metis_metrics::CellReport::new("only", 1));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("{}.json", report.experiment));
        std::fs::write(&path, report.render()).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let parsed = BenchReport::parse(&text).expect("parse");
        assert_eq!(parsed, report);
        assert_eq!(parsed.dataset_seed, DATASET_SEED);
        assert_eq!(parsed.run_seed, RUN_SEED);
        std::fs::remove_dir_all(&dir).ok();
    }
}

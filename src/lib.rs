//! # METIS — fast quality-aware RAG serving with configuration adaptation
//!
//! A from-scratch Rust reproduction of *METIS: Fast Quality-Aware RAG
//! Systems with Configuration Adaptation* (SOSP 2025). METIS is a RAG
//! controller that (1) prunes the per-query configuration space with an LLM
//! profiler and a rule-based mapping, and (2) jointly picks the
//! configuration and schedules it against the currently free GPU memory,
//! cutting response delay 1.6–2.5× at equal or better answer quality.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`text`] — tokenizer, chunker, fact-annotated synthetic text.
//! * [`embed`] — deterministic embedding models.
//! * [`vectordb`] — flat-L2 / IVF / HNSW vector indexes, sq8 scalar
//!   quantization, and the memory-tiered chunk store.
//! * [`llm`] — model specs, the A40 latency model, and the fact-extraction
//!   generation (quality) model.
//! * [`engine`] — vLLM-like continuous-batching discrete-event engine, plus
//!   the multi-replica `Cluster` with pluggable routing.
//! * [`datasets`] — the four synthetic evaluation workloads.
//! * [`profiler`] — the simulated LLM query profiler with confidence and
//!   feedback.
//! * [`metrics`] — token F1, latency/throughput summaries, dollar cost.
//! * [`core`] — Algorithm 1, the best-fit joint scheduler, the trait-based
//!   configuration controllers (METIS and the baselines), and the
//!   system-agnostic workload runner.
//!
//! ## Quickstart
//!
//! ```
//! use metis::prelude::*;
//!
//! // Build a small Musique-like workload and serve it with METIS.
//! let dataset = build_dataset(DatasetKind::Musique, 20, 7);
//! let arrivals = poisson_arrivals(1, 0.5, 20);
//! let run = Runner::new(
//!     &dataset,
//!     RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 42),
//! )
//! .run();
//! assert_eq!(run.per_query.len(), 20);
//! println!("mean F1 {:.3}, mean delay {:.2}s", run.mean_f1(), run.mean_delay_secs());
//! ```

pub use metis_core as core;
pub use metis_datasets as datasets;
pub use metis_embed as embed;
pub use metis_engine as engine;
pub use metis_llm as llm;
pub use metis_metrics as metrics;
pub use metis_profiler as profiler;
pub use metis_text as text;
pub use metis_vectordb as vectordb;

/// The most commonly used items, for `use metis::prelude::*`.
pub mod prelude {
    pub use metis_core::{
        choose_config, choose_config_with_slo, map_profile, plan_agentic, plan_synthesis,
        rerank_hits, rewrite_query, AgenticInputs, BestFitInputs, ConfigController, ExtKnobs,
        LatencySlo, MetisOptions, PickPolicy, PrunedSpace, RagConfig, RetrievalModel, RunConfig,
        RunResult, Runner, SloTier, SynthesisMethod, SystemKind,
    };
    pub use metis_datasets::{
        build_dataset, build_dataset_with_index, build_dataset_with_spec, burst_arrivals,
        diurnal_arrivals, gamma_arrivals, poisson_arrivals, AnnConfig, AnnCorpus, ArrivalProcess,
        Complexity, Dataset, DatasetKind, QuerySpec, TrueProfile,
    };
    pub use metis_engine::{
        Cluster, Engine, EngineConfig, Priority, ReplicaId, RouterPolicy, SchedPolicy,
    };
    pub use metis_llm::{
        FleetSpec, GenModelConfig, GenerationModel, GpuCluster, LatencyModel, ModelSpec,
    };
    pub use metis_metrics::{f1_score, CostModel, LatencySummary};
    pub use metis_profiler::{EstimatedProfile, LlmProfiler, ProfilerKind};
    pub use metis_vectordb::{HnswConfig, IndexMeta, IndexSpec, Quantization, SearchWork};
}

//! Vendored, dependency-free stand-in for the `bytes` crate.
//!
//! Provides the subset the workspace uses: [`BytesMut`] as a growable
//! buffer and [`Bytes`] as a cheaply-cloneable immutable blob (an
//! `Arc<[u8]>` underneath, preserving the O(1)-clone sharing property the
//! chunk store depends on).

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, shared, immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends `src` to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(&[1, 2, 3]);
        m.put_u8(4);
        let b = m.freeze();
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(c.len(), 4);
        assert_eq!(b, c);
    }
}

//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;

/// Length specification for [`vec()`]: an exact length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.usize_in(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Creates a strategy for `Vec`s with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

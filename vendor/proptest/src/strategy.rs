//! The [`Strategy`] trait and implementations for ranges and tuples.

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest (value trees + shrinking), a strategy here is
/// just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

/// A strategy that always yields clones of one value (`Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

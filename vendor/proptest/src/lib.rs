//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! range and tuple strategies, and `prop::collection::vec`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **Deterministic cases** — every test draws its inputs from a fixed
//!   per-test seed (an FNV hash of the test name), so runs are reproducible
//!   across machines with no persistence files. The case count defaults to
//!   [`DEFAULT_CASES`] and can be raised with `PROPTEST_CASES`.
//! * **No shrinking** — a failing case panics with the standard assert
//!   message; inputs are recoverable by re-running the deterministic
//!   sequence.

pub mod arbitrary;
pub mod collection;
pub mod strategy;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop`: module-path access to the
    /// strategy combinators (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Number of cases each property runs by default.
pub const DEFAULT_CASES: u32 = 48;

/// Case count: `PROPTEST_CASES` env var, or [`DEFAULT_CASES`].
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// The deterministic generator behind every strategy.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Runs one property body with panic context; used by [`proptest!`].
#[doc(hidden)]
pub fn run_case<F: FnOnce()>(test: &str, case: u32, f: F) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    if let Err(e) = result {
        eprintln!("proptest: {test} failed at deterministic case #{case}");
        std::panic::resume_unwind(e);
    }
}

/// Defines deterministic property tests.
///
/// Supports the common proptest form:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0i32..5, 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $crate::run_case(stringify!($name), __case, move || $body);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1u32..5, v in prop::collection::vec(0f32..1.0, 2..6),
                           b in any::<bool>(), pair in (0u64..3, 10usize..12)) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
            prop_assert_ne!(b, !b);
            prop_assert!(pair.0 < 3);
            prop_assert_eq!(pair.1.clamp(10, 11), pair.1);
        }

        #[test]
        fn exact_len_vec(v in prop::collection::vec(-1.0f64..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::TestRng;

/// Types with a canonical strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T`, as in `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for uniform `bool`s.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_full_range {
    ($($t:ty => $s:ident),* $(,)?) => {$(
        /// Strategy for the full value range of the type.
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $s;

        impl Strategy for $s {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $s;
            fn arbitrary() -> $s { $s }
        }
    )*};
}

impl_arbitrary_full_range!(
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize,
);

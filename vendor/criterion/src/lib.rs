//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's micro-benchmarks use —
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — with
//! wall-clock timing via `std::time::Instant`. No statistical analysis, no
//! HTML reports: each benchmark prints its median per-iteration time, which
//! is enough to compare hot paths between commits in this offline
//! environment.

// Wall-clock timing is this shim's entire purpose; the workspace-wide
// `disallowed-methods` ban (clippy.toml) does not apply here.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching criterion's API.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// How batched setup output is grouped; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate the per-sample iteration count to ~1ms, so very fast
        // routines are not dominated by timer resolution.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Measures `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_nanos(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / u128::from(self.iters_per_sample))
            .collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let med = b.median_nanos();
        let (value, unit) = if med >= 1_000_000 {
            (med as f64 / 1_000_000.0, "ms")
        } else if med >= 1_000 {
            (med as f64 / 1_000.0, "µs")
        } else {
            (med as f64, "ns")
        };
        println!(
            "{name:<44} time: {value:>10.3} {unit}/iter (median of {})",
            b.samples.len()
        );
        self.results.push((name.to_owned(), med as f64));
        self
    }

    /// Measured `(name, median nanos/iter)` pairs, in run order — lets a
    /// caller re-emit the numbers into a machine-readable report (upstream
    /// criterion persists JSON itself; this shim leaves IO to the caller).
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)*
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routines() {
        let mut ran = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("smoke/add", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
        Criterion::default()
            .sample_size(2)
            .bench_function("smoke/batched", |b| {
                b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
            });
    }
}

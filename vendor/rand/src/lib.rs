//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the `rand` 0.8 API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — backed
//! by a fixed, portable generator (SplitMix64). Every sequence is a pure
//! function of the seed, on every platform, which is exactly the
//! reproducibility property the simulation layers rely on.

pub mod rngs;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Per-type uniform sampling, mirroring `rand::distributions::uniform`.
///
/// [`SampleRange`] is blanket-implemented over this trait so that an
/// unsuffixed float literal range (`-1.0..1.0`) unifies to one type
/// parameter and Rust's `f64` literal fallback applies, as with upstream
/// rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty as $w:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $w).wrapping_sub(lo as $w) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $w).wrapping_sub(lo as $w) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
